#include "see/engine.hpp"

#include <algorithm>
#include <memory>
#include <unordered_set>

#include "see/dominance.hpp"
#include "see/feasibility.hpp"
#include "see/route_allocator.hpp"
#include "see/snapshot.hpp"
#include "support/arena.hpp"
#include "support/check.hpp"
#include "support/log.hpp"
#include "support/str.hpp"

namespace hca::see {

SpaceExplorationEngine::SpaceExplorationEngine(SeeOptions options)
    : options_(options) {
  HCA_REQUIRE(options_.beamWidth >= 1, "beam width must be >= 1");
  HCA_REQUIRE(options_.candidateKeep >= 1, "candidate keep must be >= 1");
  HCA_REQUIRE(options_.maxRouteHops >= 1, "route hops must be >= 1");
}

namespace {
std::string describeItem(const Item& item) {
  return item.kind == Item::Kind::kNode
             ? strCat("node ", to_string(item.node))
             : strCat("relay of value ", to_string(item.value));
}

std::string describeGroup(const ItemGroup& group) {
  if (group.members.size() == 1) return describeItem(group.members.front());
  std::string out = "co-location group {";
  for (std::size_t i = 0; i < group.members.size(); ++i) {
    if (i > 0) out += ", ";
    out += describeItem(group.members[i]);
  }
  return out + "}";
}

/// Assigns every member of `group` to `cluster` on a clone of `state`;
/// nullopt when some member is not directly assignable there.
std::optional<PartialSolution> assignGroupDirect(
    const PreparedProblem& prepared, const PartialSolution& state,
    const ItemGroup& group, ClusterId cluster) {
  PartialSolution candidate = state;
  for (const Item& item : group.members) {
    if (!candidate.canAssign(prepared, item, cluster)) return std::nullopt;
    candidate.assign(prepared, item, cluster);
  }
  return candidate;
}

/// Recycling pool of DeltaSolution overlays for one search attempt: after
/// the first beam step every acquire rebases an existing object (two
/// memcpys of dense state, list clears) — no allocation, and one avoided
/// PartialSolution deep copy, which is what `SeeStats::copiesAvoided`
/// counts.
class DeltaPool {
 public:
  explicit DeltaPool(const PreparedProblem& prepared) : prepared_(prepared) {}

  DeltaSolution* acquire(const FlatSolution* parent) {
    DeltaSolution* d = nullptr;
    if (!free_.empty()) {
      d = free_.back();
      free_.pop_back();
    } else {
      all_.push_back(std::make_unique<DeltaSolution>());
      all_.back()->init(prepared_);
      d = all_.back().get();
    }
    d->reset(parent);
    return d;
  }

  void release(DeltaSolution* d) { free_.push_back(d); }

 private:
  const PreparedProblem& prepared_;
  std::vector<std::unique_ptr<DeltaSolution>> all_;
  std::vector<DeltaSolution*> free_;
};
}  // namespace

SeeResult SpaceExplorationEngine::run(const SeeProblem& problem,
                                      const CancellationToken* cancel) const {
  SeeResult result = runOnce(problem, options_, cancel);
  if (result.legal || !options_.retryLadder) return result;
  if (cancel != nullptr && cancel->cancelled()) return result;
  // Diversification ladder (part of the node-filter design): a narrower,
  // route-heavier search sometimes reaches a legal corner of the space the
  // scored beam pruned away. Statistics accumulate across attempts.
  std::vector<SeeOptions> ladder;
  {
    SeeOptions greedy = options_;
    greedy.beamWidth = 1;
    greedy.candidateKeep = 1;
    greedy.eagerRouting = false;
    ladder.push_back(greedy);
    SeeOptions deeper = greedy;
    deeper.beamWidth = 2;
    deeper.candidateKeep = 2;
    deeper.maxRouteHops = options_.maxRouteHops + 2;
    ladder.push_back(deeper);
    SeeOptions balanced = options_;
    balanced.eagerRouting = !options_.eagerRouting;
    ladder.push_back(balanced);
  }
  for (const SeeOptions& attempt : ladder) {
    if (cancel != nullptr && cancel->cancelled()) return result;
    SeeResult retry = runOnce(problem, attempt, cancel);
    retry.stats.merge(result.stats);
    result = std::move(retry);
    if (result.legal) return result;
  }
  return result;
}

SeeResult SpaceExplorationEngine::runOnce(
    const SeeProblem& problem, const SeeOptions& options,
    const CancellationToken* cancel) const {
  return options.legacySearch ? runOnceLegacy(problem, options, cancel)
                              : runOnceDelta(problem, options, cancel);
}

SeeResult SpaceExplorationEngine::runOnceDelta(
    const SeeProblem& problem, const SeeOptions& options,
    const CancellationToken* cancel) const {
  const PreparedProblem prepared(problem, options);
  const WeightedObjective objective(options.weights);
  const IncrementalObjective incremental(options.weights);

  SeeResult result;
  // Double-buffered snapshot arenas: the live frontier's snapshots sit in
  // `cur`; survivors of a step are flattened into `nxt` (reading their
  // parents from `cur`), then `cur` is reset — its chunks are retained, so
  // steady-state steps allocate nothing — and the buffers swap.
  MonotonicArena arenaA;
  MonotonicArena arenaB;
  MonotonicArena* cur = &arenaA;
  MonotonicArena* nxt = &arenaB;
  DeltaPool pool(prepared);
  const FeasibilityOracle& oracle = prepared.oracle();
  RouteScratch routeScratch;

  const auto finishStats = [&] {
    result.stats.arenaBytesPeak =
        std::max(static_cast<std::int64_t>(arenaA.peakBytesUsed()),
                 static_cast<std::int64_t>(arenaB.peakBytesUsed()));
    result.stats.routeMemoHits += routeScratch.memoHits();
    result.stats.oracleRejects += routeScratch.hopRejects();
  };

  std::vector<const FlatSolution*> frontier;
  {
    PartialSolution initial = PartialSolution::initial(prepared);
    initial.setObjective(objective.evaluate(prepared, initial));
    frontier.push_back(FlatSolution::fromPartial(initial, prepared, *cur));
    ++result.stats.snapshotsMaterialized;
  }

  // Per-step work vectors, hoisted out of the loop so their capacity is
  // reused across steps (zero steady-state allocation).
  std::vector<DeltaSolution*> scored;
  std::vector<DeltaSolution*> next;
  std::vector<int> parentOf;  // parallel to next: index into frontier
  std::vector<std::size_t> order;
  std::vector<char> isParentBest;
  std::vector<char> selected;
  std::vector<char> dominated;
  std::vector<std::size_t> chosen;
  std::vector<std::uint64_t> seenSigs;
  std::vector<const FlatSolution*> survivors;
  // Membership-only replacement for the legacy unordered_set (frontiers
  // are small; a linear scan beats hashing and allocates nothing).
  const auto insertSig = [&seenSigs](std::uint64_t sig) {
    if (std::find(seenSigs.begin(), seenSigs.end(), sig) != seenSigs.end()) {
      return false;
    }
    seenSigs.push_back(sig);
    return true;
  };

  for (std::size_t gi = 0; gi < prepared.items().size(); ++gi) {
    const ItemGroup& group = prepared.items()[gi];
    if (cancel != nullptr && cancel->cancelled()) {
      result.legal = false;
      result.failedItem = group.members.front();
      result.failureReason = "cancelled";
      frontier.front()->toPartial(prepared, &result.solution);
      finishStats();
      return result;
    }
    if (options.maxBeamSteps > 0 &&
        result.stats.statesExplored >= options.maxBeamSteps) {
      result.legal = false;
      result.failedItem = group.members.front();
      result.failureReason =
          strCat("beam step budget exhausted (", options.maxBeamSteps, ")");
      frontier.front()->toPartial(prepared, &result.solution);
      finishStats();
      return result;
    }
    if (options.arenaBudgetBytes > 0 &&
        static_cast<std::int64_t>(arenaA.peakBytesUsed() +
                                  arenaB.peakBytesUsed()) >
            options.arenaBudgetBytes) {
      result.legal = false;
      result.failedItem = group.members.front();
      result.failureReason =
          strCat("memory budget exceeded (", options.arenaBudgetBytes,
                 " arena bytes)");
      frontier.front()->toPartial(prepared, &result.solution);
      finishStats();
      return result;
    }
    next.clear();
    parentOf.clear();
    int parentIndex = -1;
    for (const FlatSolution* state : frontier) {
      ++parentIndex;
      ++result.stats.statesExplored;
      // Enumerate candidates via isAssignable, score survivors. With eager
      // routing, clusters that are only reachable through relays are
      // offered too (at their true copy cost).
      scored.clear();
      // Feasibility oracle: with eager routing a direct-infeasible cluster
      // may still be routable, so only provably-hopeless clusters (dead or
      // not a cluster node — the route allocator rejects those with zero
      // side effects) are skipped; otherwise the full direct mask applies.
      // Skips mirror the counter increments of the code path they replace.
      const bool eagerRoutes =
          options.eagerRouting && options.enableRouteAllocator;
      const std::uint64_t feasible =
          eagerRoutes ? oracle.aliveMask()
                      : oracle.directFeasibleMask(*state, gi);
      for (const ClusterId c : prepared.clusters()) {
        if ((feasible & detail::pgBit(c)) == 0) {
          ++result.stats.copiesAvoided;
          ++result.stats.oracleRejects;
          if (eagerRoutes) ++result.stats.routeFailures;
          continue;
        }
        DeltaSolution* candidate = pool.acquire(state);
        ++result.stats.copiesAvoided;
        bool direct = true;
        for (const Item& item : group.members) {
          if (!canAssignT(prepared, *candidate, item, c)) {
            direct = false;
            break;
          }
          assignT(prepared, *candidate, item, c);
        }
        if (direct) {
          ++result.stats.candidatesEvaluated;
          candidate->setObjective(incremental.evaluate(prepared, *candidate));
          scored.push_back(candidate);
        } else if (eagerRoutes) {
          candidate->reset(state);  // discard the partial direct attempt
          int routed = 0;
          if (!routeAssignGroupT(prepared, *candidate, group, c, &routed,
                                 &routeScratch)) {
            ++result.stats.routeFailures;
            pool.release(candidate);
            continue;
          }
          ++result.stats.candidatesEvaluated;
          result.stats.routedOperands += routed;
          candidate->setObjective(incremental.evaluate(prepared, *candidate));
          scored.push_back(candidate);
        } else {
          pool.release(candidate);
        }
      }
      if (scored.empty() && options.enableRouteAllocator &&
          !options.eagerRouting) {
        // No candidates action: try routing onto each cluster. Dead and
        // non-cluster nodes fail routeAssignGroupT with zero side effects,
        // so the oracle skips them before the acquire (mirroring the
        // failure-path counters).
        ++result.stats.routeInvocations;
        int routed = 0;
        for (const ClusterId c : prepared.clusters()) {
          if ((oracle.aliveMask() & detail::pgBit(c)) == 0) {
            ++result.stats.copiesAvoided;
            ++result.stats.routeFailures;
            ++result.stats.oracleRejects;
            continue;
          }
          DeltaSolution* candidate = pool.acquire(state);
          ++result.stats.copiesAvoided;
          if (!routeAssignGroupT(prepared, *candidate, group, c, &routed,
                                 &routeScratch)) {
            ++result.stats.routeFailures;
            pool.release(candidate);
            continue;
          }
          ++result.stats.candidatesEvaluated;
          candidate->setObjective(incremental.evaluate(prepared, *candidate));
          scored.push_back(candidate);
        }
        result.stats.routedOperands += routed;
      }
      // Candidate filter: keep the best few expansions of this state.
      std::sort(scored.begin(), scored.end(),
                [](const DeltaSolution* a, const DeltaSolution* b) {
                  return a->objective() < b->objective();
                });
      const auto keep = std::min<std::size_t>(
          scored.size(), static_cast<std::size_t>(options.candidateKeep));
      result.stats.candidateRejections +=
          static_cast<std::int64_t>(scored.size() - keep);
      for (std::size_t i = 0; i < scored.size(); ++i) {
        if (i < keep) {
          next.push_back(scored[i]);
          parentOf.push_back(parentIndex);
        } else {
          pool.release(scored[i]);
        }
      }
    }

    if (next.empty()) {
      result.legal = false;
      result.failedItem = group.members.front();
      result.failureReason =
          strCat("no candidates for ", describeGroup(group),
                 " in any frontier state (communication patterns exhausted)");
      HCA_DEBUG("SEE failed: " << result.failureReason);
      frontier.front()->toPartial(prepared, &result.solution);
      finishStats();
      return result;
    }

    // Node filter: keep the beam, deduped, but parent-diverse — the best
    // child of every surviving parent is retained first so a feasible
    // lineage is never pruned purely on score, then the remaining slots go
    // to the globally best states.
    order.resize(next.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return next[a]->objective() < next[b]->objective();
    });
    isParentBest.assign(frontier.size(), 0);
    selected.assign(next.size(), 0);
    chosen.clear();
    seenSigs.clear();
    for (const std::size_t i : order) {  // best child per parent
      const int parent = parentOf[i];
      if (isParentBest[static_cast<std::size_t>(parent)] != 0) continue;
      isParentBest[static_cast<std::size_t>(parent)] = 1;
      if (!insertSig(next[i]->signature())) continue;
      selected[i] = 1;
      chosen.push_back(i);
    }
    for (const std::size_t i : order) {  // fill up with global best
      if (static_cast<int>(chosen.size()) >= options.beamWidth) break;
      if (selected[i] != 0) continue;
      if (!insertSig(next[i]->signature())) continue;
      selected[i] = 1;
      chosen.push_back(i);
    }
    // Dominance pruning (opt-in): drop strictly-dominated expansions from
    // the discard set. Selection above never consults the dominance
    // relation — a dominated state the filter chose stays chosen — so the
    // surviving beam, and with it every downstream counter and the final
    // mapping, is byte-identical with the flag on or off (the hard
    // constraint of the oracle work); what the pass buys is the
    // dominancePruned counter quantifying how much of the frontier churn
    // was covered outright by a sibling. See dominance.hpp.
    if (options.dominancePruning) {
      result.stats.dominancePruned += static_cast<std::int64_t>(
          markDominated(prepared, next, selected, dominated));
    }
    std::sort(chosen.begin(), chosen.end(), [&](std::size_t a, std::size_t b) {
      return next[a]->objective() < next[b]->objective();
    });
    if (static_cast<int>(chosen.size()) > options.beamWidth) {
      chosen.resize(static_cast<std::size_t>(options.beamWidth));
    }
    // Materialize the survivors into the spare arena (their parents stay
    // readable in `cur` until after the flatten), then retire `cur`.
    survivors.clear();
    for (const std::size_t i : chosen) {
      survivors.push_back(FlatSolution::fromDelta(*next[i], *nxt));
      ++result.stats.snapshotsMaterialized;
    }
    result.stats.statesPruned +=
        static_cast<std::int64_t>(next.size() - survivors.size());
    for (DeltaSolution* d : next) pool.release(d);
    frontier.assign(survivors.begin(), survivors.end());
    cur->reset();
    std::swap(cur, nxt);
  }

  result.legal = true;
  result.alternatives.resize(frontier.size());
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    frontier[i]->toPartial(prepared, &result.alternatives[i]);
  }
  result.solution = result.alternatives.front();
  finishStats();
  return result;
}

SeeResult SpaceExplorationEngine::runOnceLegacy(
    const SeeProblem& problem, const SeeOptions& options,
    const CancellationToken* cancel) const {
  const PreparedProblem prepared(problem, options);
  const WeightedObjective objective(options.weights);
  const FeasibilityOracle& oracle = prepared.oracle();
  RouteScratch routeScratch;

  SeeResult result;
  const auto finishStats = [&] {
    result.stats.routeMemoHits += routeScratch.memoHits();
    result.stats.oracleRejects += routeScratch.hopRejects();
  };
  std::vector<PartialSolution> frontier;
  frontier.push_back(PartialSolution::initial(prepared));
  frontier.back().setObjective(
      objective.evaluate(prepared, frontier.back()));

  for (std::size_t gi = 0; gi < prepared.items().size(); ++gi) {
    const ItemGroup& group = prepared.items()[gi];
    if (cancel != nullptr && cancel->cancelled()) {
      result.legal = false;
      result.failedItem = group.members.front();
      result.failureReason = "cancelled";
      result.solution = frontier.front();
      finishStats();
      return result;
    }
    if (options.maxBeamSteps > 0 &&
        result.stats.statesExplored >= options.maxBeamSteps) {
      result.legal = false;
      result.failedItem = group.members.front();
      result.failureReason =
          strCat("beam step budget exhausted (", options.maxBeamSteps, ")");
      result.solution = frontier.front();
      finishStats();
      return result;
    }
    std::vector<PartialSolution> next;
    std::vector<int> parentOf;  // parallel to next: index into frontier
    int parentIndex = -1;
    for (const PartialSolution& state : frontier) {
      ++parentIndex;
      ++result.stats.statesExplored;
      // Enumerate candidates via isAssignable, score survivors. With eager
      // routing, clusters that are only reachable through relays are
      // offered too (at their true copy cost).
      std::vector<PartialSolution> scored;
      // Same oracle pre-filter as the delta path; here a skip also avoids
      // the PartialSolution deep copy assignGroupDirect would clone.
      const bool eagerRoutes =
          options.eagerRouting && options.enableRouteAllocator;
      const std::uint64_t feasible =
          eagerRoutes ? oracle.aliveMask()
                      : oracle.directFeasibleMask(state, gi);
      for (const ClusterId c : prepared.clusters()) {
        if ((feasible & detail::pgBit(c)) == 0) {
          ++result.stats.oracleRejects;
          if (eagerRoutes) ++result.stats.routeFailures;
          continue;
        }
        if (auto candidate = assignGroupDirect(prepared, state, group, c)) {
          ++result.stats.candidatesEvaluated;
          candidate->setObjective(objective.evaluate(prepared, *candidate));
          scored.push_back(std::move(*candidate));
        } else if (eagerRoutes) {
          int routed = 0;
          auto sol = RouteAllocator::tryAssignGroup(prepared, state, group, c,
                                                    &routed, &routeScratch);
          if (!sol.has_value()) {
            ++result.stats.routeFailures;
            continue;
          }
          ++result.stats.candidatesEvaluated;
          result.stats.routedOperands += routed;
          sol->setObjective(objective.evaluate(prepared, *sol));
          scored.push_back(std::move(*sol));
        }
      }
      if (scored.empty() && options.enableRouteAllocator &&
          !options.eagerRouting) {
        // No candidates action: try routing onto each cluster (dead and
        // non-cluster nodes skipped up front, mirroring the failure path).
        ++result.stats.routeInvocations;
        int routed = 0;
        for (const ClusterId c : prepared.clusters()) {
          if ((oracle.aliveMask() & detail::pgBit(c)) == 0) {
            ++result.stats.routeFailures;
            ++result.stats.oracleRejects;
            continue;
          }
          auto sol = RouteAllocator::tryAssignGroup(prepared, state, group,
                                                    c, &routed, &routeScratch);
          if (!sol.has_value()) {
            ++result.stats.routeFailures;
            continue;
          }
          ++result.stats.candidatesEvaluated;
          sol->setObjective(objective.evaluate(prepared, *sol));
          scored.push_back(std::move(*sol));
        }
        result.stats.routedOperands += routed;
      }
      // Candidate filter: keep the best few expansions of this state.
      std::sort(scored.begin(), scored.end(),
                [](const PartialSolution& a, const PartialSolution& b) {
                  return a.objective() < b.objective();
                });
      const auto keep = std::min<std::size_t>(
          scored.size(), static_cast<std::size_t>(options.candidateKeep));
      result.stats.candidateRejections +=
          static_cast<std::int64_t>(scored.size() - keep);
      for (std::size_t i = 0; i < keep; ++i) {
        next.push_back(std::move(scored[i]));
        parentOf.push_back(parentIndex);
      }
    }

    if (next.empty()) {
      result.legal = false;
      result.failedItem = group.members.front();
      result.failureReason =
          strCat("no candidates for ", describeGroup(group),
                 " in any frontier state (communication patterns exhausted)");
      HCA_DEBUG("SEE failed: " << result.failureReason);
      result.solution = frontier.front();
      finishStats();
      return result;
    }

    // Node filter: keep the beam, deduped, but parent-diverse — the best
    // child of every surviving parent is retained first so a feasible
    // lineage is never pruned purely on score, then the remaining slots go
    // to the globally best states.
    std::vector<std::size_t> order(next.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return next[a].objective() < next[b].objective();
    });
    std::vector<char> isParentBest(frontier.size(), 0);
    std::vector<char> selected(next.size(), 0);
    std::vector<std::size_t> chosen;
    // Insert-only membership test (dedup by signature); never iterated,
    // so hash order cannot reach the result.
    std::unordered_set<std::uint64_t> seen;
    for (const std::size_t i : order) {  // best child per parent
      const int parent = parentOf[i];
      if (isParentBest[static_cast<std::size_t>(parent)] != 0) continue;
      isParentBest[static_cast<std::size_t>(parent)] = 1;
      if (!seen.insert(next[i].signature()).second) continue;
      selected[i] = 1;
      chosen.push_back(i);
    }
    for (const std::size_t i : order) {  // fill up with global best
      if (static_cast<int>(chosen.size()) >= options.beamWidth) break;
      if (selected[i] != 0) continue;
      if (!seen.insert(next[i].signature()).second) continue;
      selected[i] = 1;
      chosen.push_back(i);
    }
    std::sort(chosen.begin(), chosen.end(), [&](std::size_t a, std::size_t b) {
      return next[a].objective() < next[b].objective();
    });
    if (static_cast<int>(chosen.size()) > options.beamWidth) {
      chosen.resize(static_cast<std::size_t>(options.beamWidth));
    }
    std::vector<PartialSolution> pruned;
    pruned.reserve(chosen.size());
    for (const std::size_t i : chosen) pruned.push_back(std::move(next[i]));
    result.stats.statesPruned +=
        static_cast<std::int64_t>(next.size() - pruned.size());
    frontier = std::move(pruned);
  }

  result.legal = true;
  result.solution = frontier.front();
  result.alternatives = std::move(frontier);
  finishStats();
  return result;
}

}  // namespace hca::see
