#include "hca/progress.hpp"

#include <cerrno>
#include <cstring>
#include <sstream>

#include "support/check.hpp"
#include "support/context.hpp"
#include "support/io.hpp"
#include "support/json.hpp"
#include "support/str.hpp"

namespace hca::core {

namespace {

std::string eventLineJson(const ProgressEvent& event, std::int64_t seq) {
  std::ostringstream os;
  JsonWriter json(os);
  json.beginObject();
  json.key("schema_version").value(RunContext::kSchemaVersion);
  json.key("seq").value(seq);
  json.key("event").value(event.event);
  json.key("job").value(event.job);
  json.key("state").value(event.state);
  json.key("outcome").value(event.outcome);
  json.key("try").value(event.tryNumber);
  json.key("phase").value(event.phase);
  json.key("jobs_total").value(event.jobsTotal);
  json.key("jobs_done").value(event.jobsDone);
  json.key("jobs_ok").value(event.jobsOk);
  json.key("jobs_failed").value(event.jobsFailed);
  json.key("elapsed_ms").value(event.elapsedMs);
  json.key("eta_ms");
  if (event.etaMs >= 0) {
    json.value(event.etaMs);
  } else {
    json.null();
  }
  json.key("resumed").value(event.resumed);
  json.endObject();
  return os.str();
}

/// The last *complete* line of `text` (ends in '\n'), or "" when none.
std::string lastCompleteLine(const std::string& text) {
  const std::size_t lastNewline = text.rfind('\n');
  if (lastNewline == std::string::npos) return "";
  const std::size_t prev = text.rfind('\n', lastNewline - 1);
  const std::size_t begin = prev == std::string::npos ? 0 : prev + 1;
  if (lastNewline == 0) return "";
  return text.substr(begin, lastNewline - begin);
}

}  // namespace

ProgressLog::ProgressLog(std::string path) : path_(std::move(path)) {
  std::int64_t lastSeq = -1;
  if (fileExists(path_)) {
    const std::string existing = readFile(path_);
    const std::string tail = lastCompleteLine(existing);
    if (!tail.empty()) {
      // A corrupt *complete* line means the file is not ours — refuse to
      // extend it rather than emit a log that no longer strict-parses.
      lastSeq = parseProgressLine(tail).seq;
      resumed_ = true;
    }
  }
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    throw IoError(strCat("progress: cannot open '", path_,
                         "' for append: ", std::strerror(errno)));
  }
  MutexLock lock(mu_);
  seq_ = lastSeq + 1;
}

ProgressLog::~ProgressLog() {
  MutexLock lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
}

void ProgressLog::write(const ProgressEvent& event) {
  MutexLock lock(mu_);
  const std::string line = eventLineJson(event, seq_++) + "\n";
  const bool ok = file_ != nullptr &&
                  std::fwrite(line.data(), 1, line.size(), file_) ==
                      line.size() &&
                  std::fflush(file_) == 0;
  if (!ok) {
    throw IoError(strCat("progress: short write to '", path_, "'"));
  }
}

ProgressLine parseProgressLine(const std::string& line) {
  JsonValue value;
  std::string error;
  HCA_REQUIRE(parseJson(line, &value, &error),
              "progress line: bad JSON: " << error);
  HCA_REQUIRE(value.isObject(), "progress line: not a JSON object");

  ProgressLine out;
  bool haveSchema = false, haveSeq = false, haveEvent = false;
  for (const auto& [key, member] : value.object) {
    if (key == "schema_version") {
      HCA_REQUIRE(member.kind == JsonValue::Kind::kNumber &&
                      static_cast<int>(member.number) ==
                          RunContext::kSchemaVersion,
                  "progress line: unsupported schema_version");
      haveSchema = true;
    } else if (key == "seq") {
      HCA_REQUIRE(member.kind == JsonValue::Kind::kNumber,
                  "progress line: 'seq' must be a number");
      out.seq = static_cast<std::int64_t>(member.number);
      haveSeq = true;
    } else if (key == "event") {
      HCA_REQUIRE(member.kind == JsonValue::Kind::kString,
                  "progress line: 'event' must be a string");
      out.event = member.string;
      haveEvent = true;
    } else if (key == "job") {
      out.job = member.string;
    } else if (key == "state") {
      out.state = member.string;
    } else if (key == "outcome") {
      out.outcome = member.string;
    } else if (key == "try") {
      out.tryNumber = static_cast<int>(member.number);
    } else if (key == "phase") {
      out.phase = member.string;
    } else if (key == "jobs_total") {
      out.jobsTotal = static_cast<int>(member.number);
    } else if (key == "jobs_done") {
      out.jobsDone = static_cast<int>(member.number);
    } else if (key == "jobs_ok") {
      out.jobsOk = static_cast<int>(member.number);
    } else if (key == "jobs_failed") {
      out.jobsFailed = static_cast<int>(member.number);
    } else if (key == "elapsed_ms") {
      out.elapsedMs = static_cast<std::int64_t>(member.number);
    } else if (key == "eta_ms") {
      out.etaMs = member.kind == JsonValue::Kind::kNull
                      ? -1
                      : static_cast<std::int64_t>(member.number);
    } else if (key == "resumed") {
      HCA_REQUIRE(member.kind == JsonValue::Kind::kBool,
                  "progress line: 'resumed' must be a bool");
      out.resumed = member.boolean;
    } else {
      HCA_REQUIRE(false, "progress line: unknown member '" << key << "'");
    }
  }
  HCA_REQUIRE(haveSchema && haveSeq && haveEvent,
              "progress line: incomplete (schema_version/seq/event)");
  const bool knownEvent = out.event == "batch-start" ||
                          out.event == "job-state" ||
                          out.event == "heartbeat" || out.event == "batch-end";
  HCA_REQUIRE(knownEvent, "progress line: unknown event '" << out.event
                                                           << "'");
  return out;
}

}  // namespace hca::core
