#include "hca/verify_hook.hpp"
#include "verify/verify.hpp"

/// The verify half of the driver <-> verifier seam (see hca/verify_hook.hpp):
/// hca declares runPipelineVerify, this translation unit defines it against
/// the built-in check registry.
namespace hca::core {

PipelineVerifyOutcome runPipelineVerify(const PipelineVerifyRequest& request) {
  verify::VerifyInput input;
  input.ddg = request.ddg;
  input.model = request.model;
  input.result = request.result;
  input.record = request.record;
  static const std::vector<std::string> kAllChecks;
  const std::vector<std::string>& checks =
      request.checks != nullptr ? *request.checks : kAllChecks;
  const auto& registry = verify::CheckRegistry::builtin();
  const std::vector<verify::Diagnostic> diagnostics =
      request.record != nullptr ? registry.runRecord(input, checks)
                                : registry.run(input, checks);
  PipelineVerifyOutcome outcome;
  outcome.violations = diagnostics.size();
  if (!diagnostics.empty()) {
    outcome.formatted = verify::formatDiagnostics(diagnostics);
  }
  return outcome;
}

}  // namespace hca::core
