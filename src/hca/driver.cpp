#include "hca/driver.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <set>

#include "baseline/flat_ica.hpp"
#include "hca/checkpoint.hpp"
#include "hca/verify_hook.hpp"
#include "mapper/mapper.hpp"
#include "support/check.hpp"
#include "support/log.hpp"
#include "support/str.hpp"
#include "support/thread_pool.hpp"

namespace hca::core {

const char* to_string(FailureCause cause) {
  switch (cause) {
    case FailureCause::kInvalidInput: return "invalid-input";
    case FailureCause::kDisconnectedFabric: return "disconnected-fabric";
    case FailureCause::kDeadlineExpired: return "deadline-expired";
    case FailureCause::kNoLegalMapping: return "no-legal-mapping";
    case FailureCause::kInternalError: return "internal-error";
  }
  return "unknown";
}

std::string HcaFailureReport::toString() const {
  std::string out = strCat("HcaFailure{", to_string(cause));
  if (level >= 0) {
    out += strCat(", level ", level, " [", strJoin(subproblemPath, "."), "]");
  }
  out += strCat(": ", message);
  if (!escalationsTried.empty()) {
    out += strCat(" (escalations: ", strJoin(escalationsTried, ", "), ")");
  }
  out += "}";
  return out;
}

namespace {

/// A !legal HcaResult carrying a structured report (kDegrade paths).
HcaResult failureResult(FailureCause cause, std::string message,
                        std::vector<std::string> escalations = {}) {
  HcaResult result;
  result.legal = false;
  result.failureReason = message;
  auto report = std::make_unique<HcaFailureReport>();
  report->cause = cause;
  report->message = std::move(message);
  report->escalationsTried = std::move(escalations);
  result.failure = std::move(report);
  return result;
}

/// --verify-each hook. `record` non-null runs the per-record (between
/// stages) checks on a just-mapped sub-problem; null runs the whole-result
/// checks on a legal attempt. A diagnostic means the driver corrupted its
/// own state somewhere upstream of this stage — a bug, so it throws
/// InternalError (which kDegrade folds into a kInternalError report).
void runVerifyEach(const ddg::Ddg& ddg, const machine::DspFabricModel& model,
                   const HcaOptions& options, const HcaResult& result,
                   const ProblemRecord* record) {
  PipelineVerifyRequest request;
  request.ddg = &ddg;
  request.model = &model;
  request.result = &result;
  request.record = record;
  request.checks = &options.verifyChecks;
  const PipelineVerifyOutcome outcome = runPipelineVerify(request);
  if (outcome.violations == 0) return;
  throw InternalError(
      strCat("verify-each found ", outcome.violations,
             " invariant violation(s) ",
             record != nullptr
                 ? strCat("after mapping sub-problem [",
                          strJoin(record->path, "."), "]")
                 : std::string("on the legal result"),
             ":\n", outcome.formatted));
}

/// Per-level metric name: `base + ".L" + level` (DESIGN.md section 4e).
std::string lvl(const char* base, int level) {
  return strCat(base, ".L", level);
}

}  // namespace

HcaDriver::HcaDriver(machine::DspFabricModel model, HcaOptions options)
    : model_(std::move(model)),
      options_(options),
      tracer_(options.tracer != nullptr ? options.tracer
                                        : Tracer::envForced()) {}

see::SeeOptions HcaDriver::profileOptions(int target, int profile) const {
  see::SeeOptions seeOptions = options_.see;
  seeOptions.weights.targetIi = target;
  if (options_.maxBeamSteps > 0) seeOptions.maxBeamSteps = options_.maxBeamSteps;
  switch (profile) {
    case 0: break;  // configured options
    case 1:
      seeOptions.chainGrouping = !seeOptions.chainGrouping;
      break;
    case 2:
      seeOptions.beamWidth = seeOptions.beamWidth * 2;
      seeOptions.candidateKeep = seeOptions.candidateKeep + 2;
      break;
    case 3:
      // Locality-heavy: copies and wiring budget dominate.
      seeOptions.weights.copyCount *= 3;
      seeOptions.weights.wiringSlack *= 2;
      seeOptions.weights.criticalPath *= 2;
      break;
    default:
      // Spread-heavy with deep routing.
      seeOptions.chainGrouping = !seeOptions.chainGrouping;
      seeOptions.weights.loadBalance *= 4;
      seeOptions.maxRouteHops += 2;
      seeOptions.beamWidth = seeOptions.beamWidth * 2;
      break;
  }
  applyMemoryBudget(seeOptions);
  return seeOptions;
}

void HcaDriver::applyMemoryBudget(see::SeeOptions& see) const {
  if (options_.memoryBudgetBytes <= 0) return;
  // Half the run budget is the cache's (see runLadder); the other half
  // bounds each SEE solve's snapshot arenas. Per-attempt, not divided by
  // thread count: a budget that depended on parallelism would break the
  // serial/parallel identity guarantee.
  const std::int64_t arenaShare = std::max<std::int64_t>(
      1, options_.memoryBudgetBytes / 2);
  see.arenaBudgetBytes = see.arenaBudgetBytes > 0
                             ? std::min(see.arenaBudgetBytes, arenaShare)
                             : arenaShare;
}

HcaResult HcaDriver::runAttempt(const ddg::Ddg& ddg,
                                const std::vector<DdgNodeId>& rootWs,
                                int target, int profile,
                                SubproblemCache* cache,
                                const CancellationToken* cancel) const {
  const see::SeeOptions seeOptions = profileOptions(target, profile);
  HcaResult result;
  result.assignment.assign(static_cast<std::size_t>(ddg.numNodes()),
                           CnId::invalid());
  TraceSpan span(tracer_, "hca", "attempt");
  if (span.active()) {
    span.arg("target", std::to_string(target));
    span.arg("profile", std::to_string(profile));
  }
  const auto started = monotonicNow();
  // Resolve the per-level `.L<n>` metric names once: map nodes are stable,
  // so solve() bumps raw pointers instead of rebuilding names per problem.
  std::vector<LevelMetrics> levelMetrics;
  levelMetrics.reserve(static_cast<std::size_t>(model_.numLevels()));
  for (int level = 0; level < model_.numLevels(); ++level) {
    MetricsRegistry& m = result.metrics;
    levelMetrics.push_back(LevelMetrics{
        &m.counter(lvl("cache.hits", level)),
        &m.counter(lvl("cache.misses", level)),
        &m.counter(lvl("see.problems", level)),
        &m.counter(lvl("see.expansions", level)),
        &m.counter(lvl("see.pruned", level)),
        &m.counter(lvl("see.candidates", level)),
        &m.counter(lvl("see.candidate_rejections", level)),
        &m.counter(lvl("see.route_invocations", level)),
        &m.counter(lvl("see.route_failures", level)),
        &m.counter(lvl("see.routed_operands", level)),
        &m.counter(lvl("see.copies_avoided", level)),
        &m.counter(lvl("see.snapshots", level)),
        &m.counter(lvl("see.oracle_rejects", level)),
        &m.counter(lvl("see.route_memo_hits", level)),
        &m.counter(lvl("see.dominance_pruned", level)),
        &m.counter(lvl("hca.backtracks", level)),
        &m.counter(lvl("mapper.failures", level)),
        &m.histogram(lvl("mapper.max_values_per_wire", level)),
        &m.histogram(lvl("mapper.wire_utilization", level)),
        &m.histogram(lvl("mapper.copies_per_ili", level)),
    });
  }
  const SolveContext ctx{seeOptions, cache, cancel, tracer_, &levelMetrics};
  result.legal = solve(ddg, /*path=*/{}, rootWs, /*relayValues=*/{},
                       Boundary{}, ctx, result);
  const auto wallUs = microsBetween(started, monotonicNow());
  result.metrics.observe("attempt.wall_us", static_cast<double>(wallUs));
  result.metrics.add(result.legal ? "attempt.legal" : "attempt.illegal", 1);
  if (span.active()) span.arg("legal", result.legal ? "true" : "false");
  result.stats.outerAttempts = 1;
  if (result.legal) {
    result.stats.achievedTargetIi = target;
    // Every instruction must have landed on a CN.
    for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
      if (!ddg::isInstruction(ddg.node(DdgNodeId(v)).op)) continue;
      HCA_CHECK(result.assignment[static_cast<std::size_t>(v)].valid(),
                "instruction " << v << " left unassigned by HCA");
    }
    result.reconfig.validate();
    // Recompute from the surviving records: the running value may include
    // pressure from backtracked (rolled-back) attempts.
    result.stats.maxWirePressure = 0;
    for (const auto& record : result.records) {
      result.stats.maxWirePressure =
          std::max(result.stats.maxWirePressure,
                   record->mapResult.maxValuesPerWire);
    }
    if (options_.verifyEach) {
      TraceSpan verifySpan(tracer_, "hca", "verify-result");
      runVerifyEach(ddg, model_, options_, result, nullptr);
    }
  }
  return result;
}

HcaResult HcaDriver::runSerialSweep(const ddg::Ddg& ddg,
                                    const std::vector<DdgNodeId>& rootWs,
                                    int iniMii, SubproblemCache* cache,
                                    const CancellationToken* deadline,
                                    const std::string& phase,
                                    const std::string& cacheScope) const {
  CheckpointManager* ckpt = options_.checkpoint;
  const int numProfiles = std::max(1, options_.searchProfiles);
  HcaStats sweepStats;
  MetricsRegistry sweepMetrics;
  HcaResult best;
  bool expired = false;
  // Failure bookkeeping of the *last* attempt in sweep order, whether it
  // ran here or was restored from a checkpoint.
  std::string lastFailureReason;
  int lastMaxWire = 0;
  for (int target = iniMii;
       target <= iniMii + std::max(0, options_.targetIiSlack) && !expired;
       ++target) {
    for (int profile = 0; profile < numProfiles; ++profile) {
      if (deadline != nullptr && deadline->cancelled()) {
        expired = true;
        break;
      }
      const int index = (target - iniMii) * numProfiles + profile;
      if (ckpt != nullptr) {
        if (const CheckpointAttempt* r = ckpt->restoredAttempt(phase, index)) {
          // This attempt already completed (and failed) in a previous run;
          // the SEE is deterministic and the cache was pre-warmed to the
          // same state, so re-running it would reproduce exactly these
          // counters. Merge and move on.
          sweepStats.merge(r->stats);
          lastFailureReason = r->failureReason;
          lastMaxWire = r->stats.maxWirePressure;
          continue;
        }
      }
      HcaResult result =
          runAttempt(ddg, rootWs, target, profile, cache, deadline);
      if (result.legal) {
        result.stats.merge(sweepStats);
        result.metrics.merge(sweepMetrics);
        return result;
      }
      sweepStats.merge(result.stats);
      sweepMetrics.merge(result.metrics);
      const bool cancelled = deadline != nullptr && deadline->cancelled();
      if (cancelled) {
        // The attempt was aborted mid-search, not genuinely infeasible.
        ++sweepStats.attemptsCancelled;
      } else if (ckpt != nullptr) {
        // Only genuinely completed failures are durable: a cancelled
        // attempt's partial stats would poison the resume identity — it
        // simply re-runs.
        CheckpointAttempt done;
        done.phase = phase;
        done.index = index;
        done.target = target;
        done.profile = profile;
        done.failureReason = result.failureReason;
        done.stats = result.stats;
        ckpt->noteAttempt(std::move(done), cacheScope, cache);
      }
      lastFailureReason = result.failureReason;
      lastMaxWire = result.stats.maxWirePressure;
      best = std::move(result);
    }
  }
  // No attempt succeeded: the last attempt's failure with the sweep's
  // aggregate counters (achievedTargetIi = 0 means "none").
  best.stats = sweepStats;
  best.stats.maxWirePressure = lastMaxWire;
  best.stats.achievedTargetIi = 0;
  best.metrics = std::move(sweepMetrics);
  best.failureReason =
      !lastFailureReason.empty()
          ? lastFailureReason
          // The deadline fired before the first attempt even started.
          : "deadline expired before any outer attempt completed";
  return best;
}

HcaResult HcaDriver::runParallelSweep(const ddg::Ddg& ddg,
                                      const std::vector<DdgNodeId>& rootWs,
                                      int iniMii, SubproblemCache* cache,
                                      int numThreads,
                                      const CancellationToken* deadline,
                                      const std::string& phase,
                                      const std::string& cacheScope) const {
  CheckpointManager* ckpt = options_.checkpoint;
  const int numProfiles = std::max(1, options_.searchProfiles);
  const int numTargets = 1 + std::max(0, options_.targetIiSlack);
  const int numAttempts = numTargets * numProfiles;

  struct AttemptSlot {
    HcaResult result;
    bool completed = false;  // runAttempt returned
    bool skipped = false;    // soft-cancelled before it started
    /// Completed failure restored from a checkpoint (not re-run).
    const CheckpointAttempt* restored = nullptr;
    std::exception_ptr error;
  };
  std::vector<AttemptSlot> slots(static_cast<std::size_t>(numAttempts));
  std::vector<CancellationToken> tokens(static_cast<std::size_t>(numAttempts));
  // Every per-attempt token also observes the run-wide deadline (chained
  // before any task can run).
  if (deadline != nullptr) {
    for (auto& token : tokens) token.chainTo(deadline);
  }
  // Lowest attempt index known to be legal: attempts above it can no
  // longer be the returned result (the sweep is ordered), so they are
  // soft-cancelled.
  std::atomic<int> bestLegal{numAttempts};

  ThreadPool pool(numThreads);
  for (int i = 0; i < numAttempts; ++i) {
    pool.submit([&, i] {
      AttemptSlot& slot = slots[static_cast<std::size_t>(i)];
      CancellationToken& token = tokens[static_cast<std::size_t>(i)];
      if (ckpt != nullptr) {
        if (const CheckpointAttempt* r = ckpt->restoredAttempt(phase, i)) {
          slot.restored = r;
          return;
        }
      }
      if (token.cancelled() ||
          bestLegal.load(std::memory_order_acquire) < i) {
        slot.skipped = true;
        return;
      }
      try {
        const int target = iniMii + i / numProfiles;
        const int profile = i % numProfiles;
        HcaResult result =
            runAttempt(ddg, rootWs, target, profile, cache, &token);
        if (result.legal) {
          int current = bestLegal.load(std::memory_order_acquire);
          while (i < current &&
                 !bestLegal.compare_exchange_weak(current, i,
                                                  std::memory_order_acq_rel)) {
          }
          for (int j = i + 1; j < numAttempts; ++j) {
            tokens[static_cast<std::size_t>(j)].cancel();
          }
        } else if (ckpt != nullptr && !token.cancelled()) {
          // A genuinely completed failure is durable progress. Recording
          // order follows completion order; the manager's lock serializes
          // the file writes.
          CheckpointAttempt done;
          done.phase = phase;
          done.index = i;
          done.target = iniMii + i / numProfiles;
          done.profile = i % numProfiles;
          done.failureReason = result.failureReason;
          done.stats = result.stats;
          ckpt->noteAttempt(std::move(done), cacheScope, cache);
        }
        slot.result = std::move(result);
        slot.completed = true;
      } catch (...) {
        slot.error = std::current_exception();
      }
    });
  }
  pool.wait();

  int winner = -1;
  for (int i = 0; i < numAttempts; ++i) {
    const AttemptSlot& slot = slots[static_cast<std::size_t>(i)];
    if (slot.completed && slot.result.legal) {
      winner = i;
      break;
    }
  }
  // Serial parity for exceptions: only errors the serial sweep would have
  // reached (before its first legal attempt) propagate.
  const int errorHorizon = winner < 0 ? numAttempts : winner;
  for (int i = 0; i < errorHorizon; ++i) {
    if (slots[static_cast<std::size_t>(i)].error != nullptr) {
      std::rethrow_exception(slots[static_cast<std::size_t>(i)].error);
    }
  }

  HcaStats aggregate;
  MetricsRegistry aggregateMetrics;
  for (int i = 0; i < numAttempts; ++i) {
    AttemptSlot& slot = slots[static_cast<std::size_t>(i)];
    if (i == winner) continue;
    if (slot.restored != nullptr) {
      aggregate.merge(slot.restored->stats);
      continue;
    }
    if (slot.skipped) {
      ++aggregate.attemptsCancelled;
      continue;
    }
    if (!slot.completed) continue;  // errored past the winner
    aggregate.merge(slot.result.stats);
    aggregateMetrics.merge(slot.result.metrics);
    if (!slot.result.legal && tokens[static_cast<std::size_t>(i)].cancelled()) {
      ++aggregate.attemptsCancelled;
    }
  }
  // Pool telemetry: how busy the portfolio kept the workers.
  {
    const ThreadPool::PoolStats ps = pool.stats();
    aggregateMetrics.add("pool.threads", pool.size());
    aggregateMetrics.add("pool.tasks", ps.tasksExecuted);
    aggregateMetrics.add("pool.max_queue_depth", ps.maxQueueDepth);
    aggregateMetrics.histogram("pool.task_wait_us").merge(ps.taskWaitUs);
    aggregateMetrics.histogram("pool.task_run_us").merge(ps.taskRunUs);
  }

  if (winner >= 0) {
    HcaResult result = std::move(slots[static_cast<std::size_t>(winner)].result);
    result.stats.merge(aggregate);
    result.metrics.merge(aggregateMetrics);
    return result;
  }
  // No attempt succeeded. Without a deadline nothing was cancelled
  // (cancellation only follows a legal result) and every slot completed;
  // with one, trailing attempts may have been skipped. Mirror the serial
  // sweep: return the last completed attempt's failure with the aggregate
  // counters.
  int lastCompleted = -1;
  for (int i = numAttempts - 1; i >= 0; --i) {
    if (slots[static_cast<std::size_t>(i)].completed ||
        slots[static_cast<std::size_t>(i)].restored != nullptr) {
      lastCompleted = i;
      break;
    }
  }
  HcaResult best;
  int lastMaxWire = 0;
  if (lastCompleted >= 0) {
    AttemptSlot& last = slots[static_cast<std::size_t>(lastCompleted)];
    if (last.restored != nullptr) {
      best.failureReason = last.restored->failureReason;
      lastMaxWire = last.restored->stats.maxWirePressure;
    } else {
      best = std::move(last.result);
      lastMaxWire = best.stats.maxWirePressure;
    }
  } else {
    best.failureReason = "deadline expired before any outer attempt completed";
  }
  best.stats = aggregate;
  best.stats.maxWirePressure = lastMaxWire;
  best.stats.achievedTargetIi = 0;
  best.metrics = std::move(aggregateMetrics);
  return best;
}

HcaResult HcaDriver::run(const ddg::Ddg& ddg) const {
  const bool degrade = options_.failurePolicy == FailurePolicy::kDegrade;

  // A fault set that disconnects the fabric can never be mapped onto;
  // refuse it up front instead of sweeping to an opaque failure.
  if (model_.hasFaults()) {
    const std::string viability = model_.faultViabilityError();
    if (!viability.empty()) {
      HCA_REQUIRE(degrade,
                  "fault set leaves the fabric disconnected: " << viability);
      return failureResult(
          FailureCause::kDisconnectedFabric,
          strCat("fault set leaves the fabric disconnected: ", viability));
    }
  }

  if (!degrade) return runChecked(ddg);
  try {
    return runChecked(ddg);
  } catch (const InvalidArgumentError& e) {
    return failureResult(FailureCause::kInvalidInput, e.what());
  } catch (const Error& e) {
    return failureResult(FailureCause::kInternalError, e.what());
  } catch (const std::exception& e) {
    return failureResult(FailureCause::kInternalError, e.what());
  }
}

HcaResult HcaDriver::runChecked(const ddg::Ddg& ddg) const {
  TraceSpan span(tracer_, "hca", "run");
  ddg.validate();

  // Base target II for the cost function (Section 4.2): clusters below
  // iniMII are never the bottleneck, so the search may pack them for
  // locality. Only surviving CNs contribute issue slots.
  int iniMii = options_.see.weights.targetIi;
  if (iniMii <= 1) {
    const auto stats = ddg.stats();
    const int issue = (stats.numInstructions + model_.aliveCns() - 1) /
                      model_.aliveCns();
    const int mem = (stats.numMemOps + model_.config().dmaSlots - 1) /
                    model_.config().dmaSlots;
    iniMii = static_cast<int>(std::max<std::int64_t>(
        {ddg.miiRec(model_.config().latency), issue, mem, 1}));
  }

  std::vector<DdgNodeId> rootWs;
  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    if (ddg::isInstruction(ddg.node(DdgNodeId(v)).op)) rootWs.emplace_back(v);
  }

  CancellationToken deadlineToken;
  const CancellationToken* deadline = nullptr;
  if (options_.deadlineMs > 0) {
    deadlineToken.setDeadline(monotonicNow() +
                              std::chrono::milliseconds(options_.deadlineMs));
    deadline = &deadlineToken;
  }
  if (options_.externalCancel != nullptr) {
    // SIGINT/SIGTERM (or a batch driver's shutdown) unwinds exactly like a
    // deadline expiry: the run stops at the next poll with best-so-far.
    deadlineToken.chainTo(options_.externalCancel);
    deadline = &deadlineToken;
  }
  if (options_.checkpoint != nullptr) {
    // Hard identity gate: resuming against a different DDG, machine,
    // fault set or result-affecting option set throws kWrongRun.
    options_.checkpoint->bindRun(runFingerprint(ddg, model_, options_),
                                 iniMii);
  }
  if (span.active()) span.arg("iniMii", std::to_string(iniMii));
  return runLadder(ddg, rootWs, iniMii, deadline);
}

HcaResult HcaDriver::runLadder(const ddg::Ddg& ddg,
                               const std::vector<DdgNodeId>& rootWs,
                               int iniMii,
                               const CancellationToken* deadline) const {
  const bool degrade = options_.failurePolicy == FailurePolicy::kDegrade;
  const auto expired = [&] {
    return deadline != nullptr && deadline->cancelled();
  };
  std::vector<std::string> escalations;

  // One cache per run: the DDG (the part of a sub-problem the cache key
  // does not serialize) is fixed for its lifetime. Under a memory budget
  // half the run's bytes go to the cache, split evenly across its shards.
  constexpr int kCacheShards = 16;
  const std::int64_t maxBytesPerShard =
      options_.memoryBudgetBytes > 0
          ? std::max<std::int64_t>(1,
                                   options_.memoryBudgetBytes / 2 /
                                       kCacheShards)
          : 0;
  SubproblemCache cache(kCacheShards, /*maxEntriesPerShard=*/0,
                        maxBytesPerShard);
  SubproblemCache* cachePtr =
      options_.enableSubproblemCache ? &cache : nullptr;

  // Resume: pre-warm the cache with the checkpoint's snapshot. The first
  // re-run attempt then observes exactly the cache state it would have had
  // in an uninterrupted run, so hit/miss counters stay byte-identical.
  const std::string& scope = options_.checkpointScope;
  if (options_.checkpoint != nullptr && cachePtr != nullptr) {
    if (const auto* entries = options_.checkpoint->restoredCache(scope)) {
      for (const auto& [key, seeResult] : *entries) {
        cachePtr->insert(key, seeResult);
      }
    }
  }

  // Folds the cache's per-shard counters into the returned result, both as
  // run totals and as across-shard distributions (a hot shard shows up as
  // a max far above the p50). Applied once per runLadder return; the
  // nested degraded-bandwidth ladder harvests its own cache first and the
  // counters sum.
  const auto harvestCache = [&](HcaResult& r) {
    if (cachePtr == nullptr) return;
    const auto shards = cachePtr->shardStats();
    for (const auto& s : shards) {
      r.metrics.add("cache.hits", s.hits);
      r.metrics.add("cache.misses", s.misses);
      r.metrics.add("cache.evictions", s.evictions);
      r.metrics.add("cache.entries", s.entries);
      r.metrics.observe("cache.shard_hits", static_cast<double>(s.hits));
      r.metrics.observe("cache.shard_entries", static_cast<double>(s.entries));
    }
    r.metrics.add("cache.shards", static_cast<std::int64_t>(shards.size()));
  };

  // Rung 1 — the primary sweep: smallest target II first (the
  // modulo-scheduling II search applied to clusterization), a few
  // heuristic profiles per target — serially, or as a parallel portfolio
  // with deterministic selection.
  const int numAttempts = (1 + std::max(0, options_.targetIiSlack)) *
                          std::max(1, options_.searchProfiles);
  const int threads =
      std::min(ThreadPool::effectiveThreads(options_.numThreads,
                                            options_.allowOversubscribe),
               numAttempts);
  HcaResult best;
  {
    TraceSpan rung(tracer_, "hca", "rung:primary-sweep");
    const std::string phase = scope + "sweep";
    best = threads <= 1
               ? runSerialSweep(ddg, rootWs, iniMii, cachePtr, deadline,
                                phase, scope)
               : runParallelSweep(ddg, rootWs, iniMii, cachePtr, threads,
                                  deadline, phase, scope);
  }
  best.metrics.add("ladder.rung.primary", 1);
  if (best.legal) {
    harvestCache(best);
    return best;
  }

  // Rung 2 (kDegrade) — retry with backoff: a widened beam and deeper
  // candidate keep explore assignments the primary profiles pruned.
  if (degrade && !expired()) {
    escalations.push_back("widened-beam retry (beam x2, keep +4)");
    best.metrics.add("ladder.rung.beam_backoff", 1);
    TraceSpan rung(tracer_, "hca", "rung:beam-backoff");
    HcaOptions wider = options_;
    wider.see.beamWidth *= 2;
    wider.see.candidateKeep += 4;
    const HcaDriver widened(model_, wider);
    // The rung shares this ladder's cache, so its attempts snapshot under
    // this ladder's scope — but under their own phase label (rungs reuse
    // attempt indices 0..N).
    const std::string phase = scope + "beam-backoff";
    HcaResult retry =
        threads <= 1
            ? widened.runSerialSweep(ddg, rootWs, iniMii, cachePtr, deadline,
                                     phase, scope)
            : widened.runParallelSweep(ddg, rootWs, iniMii, cachePtr, threads,
                                       deadline, phase, scope);
    if (retry.legal) {
      retry.stats.merge(best.stats);
      retry.metrics.merge(best.metrics);
      retry.fallbackUsed = "beam-backoff";
      harvestCache(retry);
      return retry;
    }
    best.stats.merge(retry.stats);
    best.metrics.merge(retry.metrics);
  }

  // Rung 3 — degraded-bandwidth fallback: solve on a copy of the machine
  // whose MUX capacities are clamped to 2 (faults carried over). The
  // produced wiring uses a subset of the real surviving wires, so the
  // result is valid (if slow) on the real fabric. Skipped when the faults
  // leave the *degraded* fabric disconnected — the real one may still be
  // fine with its wider MUXes.
  if (options_.degradedFallback && !expired() &&
      (model_.config().n > 2 || model_.config().m > 2 ||
       model_.config().k > 2)) {
    machine::DspFabricConfig degradedConfig = model_.config();
    degradedConfig.n = std::min(degradedConfig.n, 2);
    degradedConfig.m = std::min(degradedConfig.m, 2);
    degradedConfig.k = std::min(degradedConfig.k, 2);
    machine::DspFabricModel degradedModel(degradedConfig, model_.faults());
    if (!degradedModel.hasFaults() ||
        degradedModel.faultViabilityError().empty()) {
      escalations.push_back("degraded-bandwidth re-run (N=M=K=2)");
      best.metrics.add("ladder.rung.degraded_bandwidth", 1);
      TraceSpan rung(tracer_, "hca", "rung:degraded-bandwidth");
      HcaOptions degradedOptions = options_;
      degradedOptions.degradedFallback = false;
      degradedOptions.failurePolicy = FailurePolicy::kStrict;
      degradedOptions.targetIiSlack = std::max(options_.targetIiSlack, 6);
      // The nested ladder owns a fresh cache; scope its attempts and cache
      // snapshot so they never collide with this ladder's in the file.
      degradedOptions.checkpointScope = scope + "degraded-bandwidth/";
      const HcaDriver degraded(std::move(degradedModel), degradedOptions);
      HcaResult result = degraded.runLadder(ddg, rootWs, iniMii, deadline);
      if (result.legal) {
        result.stats.merge(best.stats);
        result.metrics.merge(best.metrics);
        result.fallbackUsed = "degraded-bandwidth";
        harvestCache(result);
        return result;
      }
      best.stats.merge(result.stats);
      best.metrics.merge(result.metrics);
    }
  }

  // Rung 4 (kDegrade) — flat ICA on the surviving resources: gives up the
  // hierarchical search entirely and accepts any assignment the post-hoc
  // hierarchy check can realize, materialized into regular records.
  if (degrade && !expired() && model_.totalCns() <= 64) {
    escalations.push_back("flat ICA on surviving resources");
    best.metrics.add("ladder.rung.flat_ica", 1);
    TraceSpan rung(tracer_, "hca", "rung:flat-ica");
    see::SeeOptions flatOptions = options_.see;
    if (options_.maxBeamSteps > 0) {
      flatOptions.maxBeamSteps = options_.maxBeamSteps;
    }
    applyMemoryBudget(flatOptions);
    baseline::HierarchyCollect collect;
    const baseline::FlatIcaResult flat =
        baseline::runFlatIca(ddg, model_, flatOptions, deadline, &collect);
    if (flat.assignmentLegal && flat.hierarchyLegal) {
      HcaResult result;
      result.legal = true;
      result.fallbackUsed = "flat-ica";
      result.assignment = flat.assignment;
      result.records = std::move(collect.records);
      result.reconfig = std::move(collect.reconfig);
      result.reconfig.validate();
      result.stats = best.stats;
      result.metrics = std::move(best.metrics);
      ++result.stats.outerAttempts;
      result.stats.statesExplored += flat.seeStats.statesExplored;
      result.stats.candidatesEvaluated += flat.seeStats.candidatesEvaluated;
      result.stats.routeInvocations += flat.seeStats.routeInvocations;
      result.stats.seeCopiesAvoided += flat.seeStats.copiesAvoided;
      result.stats.seeSnapshotsMaterialized +=
          flat.seeStats.snapshotsMaterialized;
      result.stats.seeArenaBytesPeak = std::max(
          result.stats.seeArenaBytesPeak, flat.seeStats.arenaBytesPeak);
      result.stats.seeOracleRejects += flat.seeStats.oracleRejects;
      result.stats.seeRouteMemoHits += flat.seeStats.routeMemoHits;
      result.stats.seeDominancePruned += flat.seeStats.dominancePruned;
      result.stats.problemsSolved += flat.hierarchy.problemsChecked;
      result.stats.maxWirePressure = flat.hierarchy.maxWirePressure;
      result.stats.achievedTargetIi = 0;  // no target II was honored
      // The flat rung bypasses runAttempt, so it verifies here; its
      // materialized records satisfy the same invariants as the driver's.
      if (options_.verifyEach) {
        runVerifyEach(ddg, model_, options_, result, nullptr);
      }
      harvestCache(result);
      return result;
    }
  }

  // Every rung exhausted (or the deadline cut the ladder short).
  harvestCache(best);
  best.metrics.add("ladder.escalations",
                   static_cast<std::int64_t>(escalations.size()));
  if (degrade) {
    auto report = std::make_unique<HcaFailureReport>();
    report->cause = expired() ? FailureCause::kDeadlineExpired
                              : FailureCause::kNoLegalMapping;
    if (best.failureRecord != nullptr) {
      report->level = best.failureRecord->level;
      report->subproblemPath = best.failureRecord->path;
    }
    report->message = best.failureReason;
    report->escalationsTried = std::move(escalations);
    best.failure = std::move(report);
  }
  return best;
}

bool HcaDriver::solve(const ddg::Ddg& ddg, const std::vector<int>& path,
                      std::vector<DdgNodeId> workingSet,
                      std::vector<ValueId> relayValues,
                      const Boundary& boundary, const SolveContext& ctx,
                      HcaResult& result) const {
  if (ctx.cancel != nullptr && ctx.cancel->cancelled()) {
    result.failureReason = "attempt cancelled";
    return false;
  }
  const int level = static_cast<int>(path.size());
  const bool leaf = level == model_.numLevels() - 1;
  const machine::LevelSpec spec = model_.levelSpec(level);

  TraceSpan span(ctx.tracer, "hca", "solve");
  if (span.active()) {
    span.arg("path", strJoin(path, "."));
    span.arg("level", std::to_string(level));
  }

  auto record = std::make_unique<ProblemRecord>();
  record->path = path;
  record->level = level;
  record->leaf = leaf;
  record->workingSet = workingSet;
  record->relayValues = relayValues;

  // --- Pattern graph with boundary nodes (Section 4.1, Fig. 10b). ---------
  // On a faulty machine the PG carries the sub-problem's surviving
  // resources (dead children marked, wire caps clamped); fault-free paths
  // get the identical per-level graph as before.
  record->pg = model_.patternGraphAt(path);
  see::SeeProblem problem;
  problem.ddg = &ddg;
  problem.workingSet = std::move(workingSet);
  problem.relayValues = std::move(relayValues);
  problem.constraints = model_.constraints(level);
  // Keep the next level solvable: a leaf's CNs can only absorb a handful
  // of incoming wires (Section 4.1: "the constraints must ensure that the
  // module Mapper will be able to map PG onto the Machine Model").
  const bool childrenAreLeaves = level + 1 == model_.numLevels() - 1;
  if (childrenAreLeaves && options_.leafParentMaxInNeighbors > 0 &&
      problem.constraints.maxInNeighbors > 0) {
    problem.constraints.maxInNeighbors =
        std::min(problem.constraints.maxInNeighbors,
                 options_.leafParentMaxInNeighbors);
  }
  problem.latency = model_.config().latency;
  problem.inWiresPerCluster = spec.inWires;
  problem.outWiresPerCluster = spec.outWires;

  for (const auto& wire : boundary.inputs) {
    const ClusterId in = record->pg.addInputNode(
        wire.values, strCat("in", wire.wire));
    for (const ValueId v : wire.values) {
      problem.valueSources.emplace(v, in);
    }
  }
  for (const auto& wire : boundary.outputs) {
    const ClusterId out =
        record->pg.addOutputNode(strCat("out", wire.wire), wire.values);
    problem.outputRequirements.push_back({out, wire.values});
  }
  record->pg.connectBoundaryNodes();
  problem.pg = &record->pg;

  // --- Single-level cluster assignment (Section 4.2), memoized. ------------
  // The cache key covers everything the (deterministic) SEE result depends
  // on except the fixed DDG; see subproblem_cache.hpp. A hit replays the
  // recorded result — including its stats, so aggregate counters stay
  // byte-identical with the cache off.
  std::shared_ptr<const see::SeeResult> cacheEntry;
  std::string cacheKey;
  if (ctx.cache != nullptr) {
    cacheKey = subproblemKey(record->pg, problem.constraints, problem.latency,
                             spec.inWires, spec.outWires, boundary.inputs,
                             boundary.outputs, problem.workingSet,
                             problem.relayValues, ctx.seeOptions);
    cacheEntry = ctx.cache->lookup(cacheKey);
  }
  see::SeeResult freshResult;
  const see::SeeResult* seePtr = nullptr;
  const LevelMetrics& lm = (*ctx.levels)[static_cast<std::size_t>(level)];
  if (cacheEntry != nullptr) {
    ++result.stats.cacheHits;
    ++*lm.cacheHits;
    if (span.active()) span.arg("cache", "hit");
    seePtr = cacheEntry.get();
  } else {
    TraceSpan seeSpan(ctx.tracer, "hca", "see");
    const see::SpaceExplorationEngine engine(ctx.seeOptions);
    freshResult = engine.run(problem, ctx.cancel);
    if (seeSpan.active()) {
      seeSpan.arg("states", std::to_string(freshResult.stats.statesExplored));
      seeSpan.arg("legal", freshResult.legal ? "true" : "false");
    }
    // Never cache a search aborted by cancellation: its "illegal" verdict
    // is an artifact of the abort, not a property of the sub-problem. A
    // legal result is always a complete computation and safe to cache.
    const bool aborted = !freshResult.legal && ctx.cancel != nullptr &&
                         ctx.cancel->cancelled();
    if (ctx.cache != nullptr && !aborted) {
      ++result.stats.cacheMisses;
      ++*lm.cacheMisses;
      cacheEntry = ctx.cache->insert(cacheKey, std::move(freshResult));
      seePtr = cacheEntry.get();
    } else {
      seePtr = &freshResult;
    }
  }
  const see::SeeResult& seeResult = *seePtr;

  record->seeStats = seeResult.stats;
  ++result.stats.problemsSolved;
  result.stats.statesExplored += seeResult.stats.statesExplored;
  result.stats.candidatesEvaluated += seeResult.stats.candidatesEvaluated;
  result.stats.routeInvocations += seeResult.stats.routeInvocations;
  result.stats.seeCopiesAvoided += seeResult.stats.copiesAvoided;
  result.stats.seeSnapshotsMaterialized +=
      seeResult.stats.snapshotsMaterialized;
  result.stats.seeArenaBytesPeak = std::max(
      result.stats.seeArenaBytesPeak, seeResult.stats.arenaBytesPeak);
  result.stats.seeOracleRejects += seeResult.stats.oracleRejects;
  result.stats.seeRouteMemoHits += seeResult.stats.routeMemoHits;
  result.stats.seeDominancePruned += seeResult.stats.dominancePruned;
  // Per-level search-pressure series (cache hits replay the recorded
  // SeeStats, so the counters are byte-identical with the cache on or off).
  ++*lm.seeProblems;
  *lm.seeExpansions += seeResult.stats.statesExplored;
  *lm.seePruned += seeResult.stats.statesPruned;
  *lm.seeCandidates += seeResult.stats.candidatesEvaluated;
  *lm.seeCandidateRejections += seeResult.stats.candidateRejections;
  *lm.seeRouteInvocations += seeResult.stats.routeInvocations;
  *lm.seeRouteFailures += seeResult.stats.routeFailures;
  *lm.seeRoutedOperands += seeResult.stats.routedOperands;
  *lm.seeCopiesAvoided += seeResult.stats.copiesAvoided;
  *lm.seeSnapshots += seeResult.stats.snapshotsMaterialized;
  *lm.seeOracleRejects += seeResult.stats.oracleRejects;
  *lm.seeRouteMemoHits += seeResult.stats.routeMemoHits;
  *lm.seeDominancePruned += seeResult.stats.dominancePruned;

  if (!seeResult.legal) {
    if (ctx.cancel != nullptr && ctx.cancel->cancelled()) {
      result.failureReason = "attempt cancelled";
      return false;
    }
    result.failureReason = strCat("sub-problem [", strJoin(path, "."),
                                  "] (level ", level,
                                  "): ", seeResult.failureReason);
    result.failureRecord = std::move(record);
    return false;
  }

  // --- Try the frontier's assignments in order; backtrack on deep failure.
  const auto clusters = record->pg.clusterNodes();
  const int numAlternatives = std::min<int>(
      std::max(1, options_.maxAlternatives),
      static_cast<int>(seeResult.alternatives.size()));
  std::string lastFailure;
  for (int alt = 0; alt < numAlternatives; ++alt) {
    if (ctx.cancel != nullptr && ctx.cancel->cancelled()) {
      result.failureReason = "attempt cancelled";
      return false;
    }
    if (alt > 0) {
      if (result.stats.backtrackAttempts >= options_.backtrackBudget) break;
      ++result.stats.backtrackAttempts;
      ++*lm.hcaBacktracks;
    }
    const auto& solution = seeResult.alternatives[static_cast<std::size_t>(alt)];

    // Snapshot for rollback.
    const std::size_t savedRecords = result.records.size();
    const std::size_t savedSettings = result.reconfig.settings.size();
    const std::size_t savedRelays = result.relays.size();

    auto attempt = std::make_unique<ProblemRecord>(*record);
    attempt->flow = solution.flow();
    attempt->clusterSummaries.clear();
    for (const ClusterId c : clusters) {
      ClusterSummary summary;
      summary.cluster = c;
      summary.instructions = solution.usage(c).instructions;
      summary.aluOps = solution.usage(c).alu;
      summary.agOps = solution.usage(c).ag;
      summary.distinctValuesIn = solution.distinctValuesIn(c);
      summary.distinctValuesOut = solution.distinctValuesOut(c);
      attempt->clusterSummaries.push_back(summary);
    }
    const auto childOf = [&](ClusterId c) {
      const auto it = std::find(clusters.begin(), clusters.end(), c);
      HCA_CHECK(it != clusters.end(), "assignment to a non-cluster node");
      return static_cast<int>(it - clusters.begin());
    };
    attempt->wsChild.clear();
    attempt->wsChild.reserve(attempt->workingSet.size());
    for (const DdgNodeId n : attempt->workingSet) {
      attempt->wsChild.push_back(childOf(solution.clusterOf(n)));
    }
    attempt->relayChild.clear();
    attempt->relayChild.reserve(attempt->relayValues.size());
    for (std::size_t i = 0; i < attempt->relayValues.size(); ++i) {
      attempt->relayChild.push_back(
          childOf(solution.relayCluster(static_cast<int>(i))));
    }

    // --- Map copies onto wires, derive the children's ILIs (Fig. 9/11). ----
    mapper::MapperInput mapInput;
    mapInput.pg = &attempt->pg;
    mapInput.flow = &attempt->flow;
    mapInput.inWiresPerChild = spec.inWires;
    mapInput.outWiresPerChild = spec.outWires;
    mapInput.maxWiresIntoChild = leaf ? 0 : spec.maxWiresIntoChild;
    if (model_.hasFaults()) {
      const machine::ProblemSpec pspec = model_.problemSpec(path);
      if (pspec.touched) {
        mapInput.inWiresOfChild = pspec.inWiresOfChild;
        mapInput.outWiresOfChild = pspec.outWiresOfChild;
        if (!leaf) mapInput.maxWiresIntoChildOf = pspec.maxWiresIntoChildOf;
      }
    }
    mapInput.problemPath = path;
    const mapper::Mapper mapperPass;
    {
      TraceSpan mapSpan(ctx.tracer, "hca", "mapper");
      if (mapSpan.active()) mapSpan.arg("alt", std::to_string(alt));
      attempt->mapResult = mapperPass.map(mapInput);
      if (mapSpan.active()) {
        mapSpan.arg("legal", attempt->mapResult.legal ? "true" : "false");
      }
    }
    if (!attempt->mapResult.legal) {
      ++*lm.mapperFailures;
      lastFailure = strCat("sub-problem [", strJoin(path, "."), "] (level ",
                           level, ") mapper: ",
                           attempt->mapResult.failureReason);
      continue;
    }
    // Copy-flow distribution of this level's wiring: serialization pressure
    // per mapped problem, copies funneled into each child's ILI, and the
    // fraction of the surviving wire budget actually driven.
    lm.mapperMaxValuesPerWire->add(
        static_cast<double>(attempt->mapResult.maxValuesPerWire));
    if (attempt->mapResult.wiresAvailable > 0) {
      lm.mapperWireUtilization->add(
          static_cast<double>(attempt->mapResult.wiresUsed) /
          static_cast<double>(attempt->mapResult.wiresAvailable));
    }
    for (const mapper::Ili& ili : attempt->mapResult.ilis) {
      std::int64_t copies = 0;
      for (const auto& wire : ili.inputs) {
        copies += static_cast<std::int64_t>(wire.values.size());
      }
      lm.mapperCopiesPerIli->add(static_cast<double>(copies));
    }
    result.stats.maxWirePressure = std::max(
        result.stats.maxWirePressure, attempt->mapResult.maxValuesPerWire);
    for (const auto& setting : attempt->mapResult.reconfig.settings) {
      result.reconfig.settings.push_back(setting);
    }

    // Between-stages verification: the record now carries its SEE solution
    // and mapper output, so any per-record invariant it breaks was broken
    // by *this* stage — fail loudly here instead of at the end of the run.
    if (options_.verifyEach) {
      TraceSpan verifySpan(ctx.tracer, "hca", "verify-record");
      runVerifyEach(ddg, model_, options_, result, attempt.get());
    }

    if (leaf) {
      // Children are computation nodes: record final placements.
      for (std::size_t i = 0; i < attempt->workingSet.size(); ++i) {
        auto cnPath = path;
        cnPath.push_back(attempt->wsChild[i]);
        const CnId cn = model_.cnIdOf(cnPath);
        HCA_CHECK(model_.cnAlive(cn),
                  "SEE placed instruction "
                      << attempt->workingSet[i].value() << " on dead CN "
                      << to_string(cn));
        result.assignment[attempt->workingSet[i].index()] = cn;
      }
      for (std::size_t i = 0; i < attempt->relayValues.size(); ++i) {
        auto cnPath = path;
        cnPath.push_back(attempt->relayChild[i]);
        result.relays.push_back(
            RelayPlacement{attempt->relayValues[i], model_.cnIdOf(cnPath)});
      }
      result.records.push_back(std::move(attempt));
      return true;
    }

    // --- Recurse into the children. ----------------------------------------
    const int numChildren = spec.children;
    std::vector<std::vector<DdgNodeId>> childWs(
        static_cast<std::size_t>(numChildren));
    for (std::size_t i = 0; i < attempt->workingSet.size(); ++i) {
      childWs[static_cast<std::size_t>(attempt->wsChild[i])].push_back(
          attempt->workingSet[i]);
    }
    // A child relays every value that leaves it without being produced by
    // its working set (parked parent relays and route-allocated
    // pass-throughs created at this level).
    std::vector<std::vector<ValueId>> childRelays(
        static_cast<std::size_t>(numChildren));
    for (int i = 0; i < numChildren; ++i) {
      std::set<ValueId> produced;
      for (const DdgNodeId n : childWs[static_cast<std::size_t>(i)]) {
        produced.insert(ValueId(n.value()));
      }
      std::set<ValueId> seen;
      for (const auto& wire :
           attempt->mapResult.ilis[static_cast<std::size_t>(i)].outputs) {
        for (const ValueId v : wire.values) {
          if (produced.count(v) == 0 && seen.insert(v).second) {
            childRelays[static_cast<std::size_t>(i)].push_back(v);
          }
        }
      }
    }

    if (Logger::instance().enabled(LogLevel::kDebug)) {
      for (int i = 0; i < numChildren; ++i) {
        for (const auto& wire :
             attempt->mapResult.ilis[static_cast<std::size_t>(i)].outputs) {
          if (wire.values.size() < 4) continue;
          std::string vals;
          for (const ValueId v : wire.values) {
            vals += std::to_string(v.value()) + " ";
          }
          HCA_DEBUG("problem [" << strJoin(path, ".") << "] child " << i
                                << " fat out wire " << wire.wire << ": "
                                << vals);
        }
      }
    }
    const ProblemRecord* recordPtr = attempt.get();
    result.records.push_back(std::move(attempt));

    bool childrenOk = true;
    for (int i = 0; i < numChildren; ++i) {
      Boundary childBoundary;
      childBoundary.inputs =
          recordPtr->mapResult.ilis[static_cast<std::size_t>(i)].inputs;
      childBoundary.outputs =
          recordPtr->mapResult.ilis[static_cast<std::size_t>(i)].outputs;
      auto childPath = path;
      childPath.push_back(i);
      if (!solve(ddg, childPath, childWs[static_cast<std::size_t>(i)],
                 childRelays[static_cast<std::size_t>(i)], childBoundary,
                 ctx, result)) {
        childrenOk = false;
        break;
      }
    }
    if (childrenOk) return true;

    // Roll back this attempt's contributions and try the next alternative.
    lastFailure = result.failureReason;
    result.records.resize(savedRecords);
    result.reconfig.settings.resize(savedSettings);
    result.relays.resize(savedRelays);
    for (const DdgNodeId n : problem.workingSet) {
      result.assignment[n.index()] = CnId::invalid();
    }
  }

  result.failureReason = lastFailure.empty()
                             ? strCat("sub-problem [", strJoin(path, "."),
                                      "] exhausted alternatives")
                             : lastFailure;
  // Keep the problem description (without flow) for diagnostics.
  if (result.failureRecord == nullptr) {
    result.failureRecord = std::move(record);
  }
  return false;
}

}  // namespace hca::core
