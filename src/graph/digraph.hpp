#pragma once

#include <cstdint>
#include <vector>

#include "support/check.hpp"

/// A compact mutable directed multigraph.
///
/// Nodes and edges are dense integer indices; both in- and out-adjacency are
/// maintained so the assignment passes can walk dependences in either
/// direction. Payloads live in the layers above (DDG, PatternGraph, ...),
/// keyed by the indices handed out here — this keeps the algorithms in
/// `graph/algorithms.hpp` reusable across all of them.
namespace hca::graph {

struct Edge {
  std::int32_t src = -1;
  std::int32_t dst = -1;
};

class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(std::int32_t numNodes) { resize(numNodes); }

  void resize(std::int32_t numNodes) {
    HCA_REQUIRE(numNodes >= static_cast<std::int32_t>(out_.size()),
                "Digraph::resize cannot shrink");
    out_.resize(static_cast<std::size_t>(numNodes));
    in_.resize(static_cast<std::size_t>(numNodes));
  }

  std::int32_t addNode() {
    out_.emplace_back();
    in_.emplace_back();
    return static_cast<std::int32_t>(out_.size()) - 1;
  }

  std::int32_t addEdge(std::int32_t src, std::int32_t dst) {
    HCA_REQUIRE(src >= 0 && src < numNodes(), "edge src out of range: " << src);
    HCA_REQUIRE(dst >= 0 && dst < numNodes(), "edge dst out of range: " << dst);
    const auto id = static_cast<std::int32_t>(edges_.size());
    edges_.push_back(Edge{src, dst});
    out_[static_cast<std::size_t>(src)].push_back(id);
    in_[static_cast<std::size_t>(dst)].push_back(id);
    return id;
  }

  [[nodiscard]] std::int32_t numNodes() const {
    return static_cast<std::int32_t>(out_.size());
  }
  [[nodiscard]] std::int32_t numEdges() const {
    return static_cast<std::int32_t>(edges_.size());
  }

  [[nodiscard]] const Edge& edge(std::int32_t id) const {
    return edges_[static_cast<std::size_t>(id)];
  }
  /// Edge ids leaving `node`.
  [[nodiscard]] const std::vector<std::int32_t>& outEdges(
      std::int32_t node) const {
    return out_[static_cast<std::size_t>(node)];
  }
  /// Edge ids entering `node`.
  [[nodiscard]] const std::vector<std::int32_t>& inEdges(
      std::int32_t node) const {
    return in_[static_cast<std::size_t>(node)];
  }

  [[nodiscard]] std::int32_t outDegree(std::int32_t node) const {
    return static_cast<std::int32_t>(outEdges(node).size());
  }
  [[nodiscard]] std::int32_t inDegree(std::int32_t node) const {
    return static_cast<std::int32_t>(inEdges(node).size());
  }

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<std::int32_t>> out_;
  std::vector<std::vector<std::int32_t>> in_;
};

}  // namespace hca::graph
