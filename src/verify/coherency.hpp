#pragma once

#include <string>
#include <vector>

#include "ddg/ddg.hpp"
#include "hca/driver.hpp"
#include "machine/dspfabric.hpp"

/// The coherency checker (paper Section 4.1, last paragraphs): verifies
/// that the clusterized DDG is compatible with the allocated topology — for
/// every pair of dependent nodes placed on different clusters, a
/// communication path carrying the value must exist on the final
/// architecture.
///
/// The check is performed independently of the assignment engine, from the
/// per-problem audit records alone: inside every sub-problem, every child
/// whose subtree consumes a value (and every outgoing boundary wire listing
/// it) must be reachable from the value's source (the producer's child or
/// the incoming boundary wire carrying it) through arcs on which the value
/// actually flows.
///
/// Violations come back deterministically ordered — by sub-problem path,
/// then value id — so diffs between two runs (or two fault sets) are
/// meaningful line-by-line. The verifier framework (verify/verify.hpp)
/// registers this function as its final `coherency` check.
namespace hca::core {

struct CoherencyViolation {
  std::vector<int> path;  // sub-problem where the flow is broken
  ValueId value;
  std::string message;
};

[[nodiscard]] std::vector<CoherencyViolation> checkCoherency(
    const ddg::Ddg& ddg, const machine::DspFabricModel& model,
    const HcaResult& result);

}  // namespace hca::core
