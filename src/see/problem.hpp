#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ddg/ddg.hpp"
#include "machine/pattern_graph.hpp"
#include "support/ids.hpp"

/// Inputs and outputs of one single-level Instruction Cluster Assignment
/// instance solved by the Space Exploration Engine (paper Section 3).
///
/// HCA (Section 4) decomposes the hierarchical problem into a sequence of
/// these: each instance sees only a Working Set of DDG nodes, a Pattern
/// Graph whose boundary (input/output) nodes encode the Inter-Level
/// Interface decided at the parent level, and the reconfiguration
/// constraints of the current interconnect level.
namespace hca::see {

struct SeeProblem {
  const ddg::Ddg* ddg = nullptr;
  /// The Working Set: DDG nodes to assign at this level.
  std::vector<DdgNodeId> workingSet;
  /// Pass-through values: pumped in by the parent and leaving again without
  /// a producer or consumer in the WS (created by route allocation at the
  /// parent level). Each must be parked on a cluster, costing one receive
  /// slot there.
  std::vector<ValueId> relayValues;

  const machine::PatternGraph* pg = nullptr;
  machine::PgConstraints constraints;
  ddg::LatencyModel latency;

  /// Interconnect figures used by the copy-pressure cost terms.
  int inWiresPerCluster = 1;
  int outWiresPerCluster = 1;

  /// Where each out-of-WS operand value is available (its input node).
  /// Point lookups only; the one whole-map walk (prepared.cpp validation)
  /// is order-insensitive and annotated ordered-ok.
  std::unordered_map<ValueId, ClusterId> valueSources;
  /// Values that must reach a given output node (one entry per outgoing
  /// wire; all values of one wire must be fed by a single cluster —
  /// the paper's outNode_MaxIn constraint, Fig. 10).
  std::vector<std::pair<ClusterId, std::vector<ValueId>>> outputRequirements;
};

/// Objective weights (Section 4.2: the main cost factor is the estimated
/// MII; the others break ties towards fewer copies and better balance).
struct CostWeights {
  double iiEstimate = 100.0;
  double copyCount = 4.0;
  double loadBalance = 0.5;
  double criticalPath = 4.0;
  double wiringSlack = 8.0;
  /// The loop's iniMII (Section 4.2): the final MII is
  /// max(iniMII, maxClsMII), so pushing a cluster below this gains nothing
  /// — the II criterion only penalizes clusters *above* the target, which
  /// lets the search trade slack for locality (fewer wires, fewer copies).
  int targetIi = 1;
};

struct SeeOptions {
  /// Beam width of the node filter (frontier size).
  int beamWidth = 4;
  /// Candidate filter: candidates kept per (state, item).
  int candidateKeep = 4;
  /// Hard cap on ops per functional unit of a cluster (schedulability
  /// pruning); <= 0 disables the cap.
  int maxOpsPerUnit = 0;
  /// Enables the route allocator as the `no candidates action`.
  bool enableRouteAllocator = true;
  /// Eager routing: also offer route-allocated assignments for clusters a
  /// node cannot reach directly, scored alongside the direct candidates.
  /// Off by default: routed candidates spread load (which the II and
  /// balance terms like) while silently consuming wire budget, which
  /// empirically poisons the beam; the paper's design — routing as the
  /// `no candidates action` only — is the default.
  bool eagerRouting = false;
  /// On failure, retry with progressively more conservative search
  /// profiles (narrower beam, deeper routing) before reporting illegal.
  bool retryLadder = true;
  /// Maximum relay hops the route allocator may insert per operand.
  int maxRouteHops = 3;
  /// Hard budget on frontier-state expansions per search attempt (each
  /// retry-ladder rung counts separately); when exhausted the engine stops
  /// and reports the best-so-far partial solution as illegal instead of
  /// searching on. <= 0 = unlimited. This is the adversarial-DDG guard:
  /// combined with a deadline token it bounds SEE wall-clock.
  int maxBeamSteps = 0;
  /// Soft ceiling on the combined high-water mark of the two search arenas
  /// (snapshot double-buffer) per SEE solve, in bytes; <= 0 = unlimited.
  /// When exceeded the engine stops expanding and reports the search
  /// illegal with a "memory budget exceeded" reason — the driver's
  /// escalation ladder then re-plans (degraded bandwidth shrinks the
  /// per-problem state) instead of the process OOMing. Part of the
  /// sub-problem cache key: a result computed under one budget must never
  /// be replayed under another. The legacy materialized path has no arenas
  /// and ignores the ceiling (use the default delta path with budgets).
  std::int64_t arenaBudgetBytes = 0;
  /// Chain grouping: merge single-consumer dependence chains into one
  /// priority-list entry so they are placed together (the paper's SEE
  /// "picks a new DDG node (or a set of nodes) at each step"). Groups are
  /// capped at roughly targetIi * issue-width / 2 ops.
  bool chainGrouping = true;
  /// Runs the beam loop on materialized PartialSolution values (full deep
  /// copy per candidate) instead of the arena-backed copy-on-write delta
  /// path. The two paths produce byte-identical results (enforced by the
  /// delta-identity test suite); this switch exists for that comparison and
  /// as an escape hatch. Deliberately *not* part of the sub-problem cache
  /// key.
  bool legacySearch = false;
  /// Frontier dominance pruning (see/dominance.hpp): before the node filter
  /// selects the beam, drop expansions that are dominated by a
  /// better-or-equal-scored sibling with a pointwise better-or-equal
  /// resource-residual vector. A heuristic (unlike the feasibility oracle it
  /// can change the search trajectory), so it defaults to off, *is* part of
  /// the sub-problem cache key and checkpoint fingerprint, and leaves the
  /// legacy path untouched. The identity test suite asserts the final
  /// mapping survives it on the Table 1 kernels.
  bool dominancePruning = false;
  CostWeights weights;
};

struct SeeStats {
  std::int64_t statesExplored = 0;     // frontier states expanded
  std::int64_t candidatesEvaluated = 0;
  std::int64_t statesPruned = 0;       // dropped by the node filter
  std::int64_t routeInvocations = 0;   // no-candidates actions taken
  std::int64_t routedOperands = 0;     // operands placed via relays
  /// Scored candidates dropped by the candidate filter (kept only the best
  /// `candidateKeep` expansions per state).
  std::int64_t candidateRejections = 0;
  /// Route-allocator attempts that found no relay path to the target
  /// cluster (tryAssignGroup returned nothing).
  std::int64_t routeFailures = 0;
  /// Candidates expanded as pooled copy-on-write deltas instead of full
  /// PartialSolution deep copies (delta path only; one per delta rebase).
  std::int64_t copiesAvoided = 0;
  /// Flat snapshots written to the search arenas (initial state plus one
  /// per beam survivor per step).
  std::int64_t snapshotsMaterialized = 0;
  /// High-water mark of bytes live in one search attempt's snapshot arenas.
  std::int64_t arenaBytesPeak = 0;
  /// Candidate clusters rejected by the feasibility oracle before any
  /// solution state was materialized: direct-loop mask rejections plus
  /// findPathT calls refused by the static hop-distance table. Each of
  /// these is work the pre-oracle engine spent on a provably-doomed
  /// candidate.
  std::int64_t oracleRejects = 0;
  /// findPathT failures answered from the negative route memo (exact
  /// region-state match with an earlier failed BFS) instead of a re-search.
  std::int64_t routeMemoHits = 0;
  /// Frontier expansions dropped by dominance pruning (0 unless
  /// SeeOptions::dominancePruning).
  std::int64_t dominancePruned = 0;

  /// Folds another search's counters into this one (retry-ladder rungs,
  /// per-level aggregation in the driver's metrics registry).
  void merge(const SeeStats& other) {
    statesExplored += other.statesExplored;
    candidatesEvaluated += other.candidatesEvaluated;
    statesPruned += other.statesPruned;
    routeInvocations += other.routeInvocations;
    routedOperands += other.routedOperands;
    candidateRejections += other.candidateRejections;
    routeFailures += other.routeFailures;
    copiesAvoided += other.copiesAvoided;
    snapshotsMaterialized += other.snapshotsMaterialized;
    arenaBytesPeak = std::max(arenaBytesPeak, other.arenaBytesPeak);
    oracleRejects += other.oracleRejects;
    routeMemoHits += other.routeMemoHits;
    dominancePruned += other.dominancePruned;
  }
};

}  // namespace hca::see
