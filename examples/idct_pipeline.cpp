// Full tool-chain walkthrough on the paper's idcthor kernel (OpenDivx
// horizontal 8-point IDCT): clusterize with HCA, materialize the receive
// primitives, modulo-schedule, execute on the fabric simulator, and verify
// against the reference interpreter.
//
//   $ ./examples/idct_pipeline

#include <cstdio>

#include "ddg/kernels.hpp"
#include "hca/driver.hpp"
#include "hca/mii.hpp"
#include "hca/postprocess.hpp"
#include "sched/modulo.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace hca;

  const auto kernel = ddg::buildIdctHor();
  std::printf("Kernel: %s\n  %s\n", kernel.name.c_str(),
              kernel.description.c_str());
  std::printf("  %d instructions (paper Table 1: %d), MIIRec %lld\n\n",
              kernel.ddg.stats().numInstructions, kernel.paper.nInstr,
              static_cast<long long>(
                  kernel.ddg.miiRec(ddg::LatencyModel{})));

  machine::DspFabricConfig config;
  config.n = config.m = config.k = 8;
  const machine::DspFabricModel model(config);

  // --- Stage 1: Hierarchical Cluster Assignment -------------------------
  const core::HcaDriver driver(model);
  const auto hca = driver.run(kernel.ddg);
  if (!hca.legal) {
    std::printf("HCA failed: %s\n", hca.failureReason.c_str());
    return 1;
  }
  const auto mii = core::computeMii(kernel.ddg, model, hca);
  std::printf("Stage 1 — HCA: legal, %d sub-problems, %lld candidates\n",
              static_cast<int>(hca.records.size()),
              static_cast<long long>(hca.stats.candidatesEvaluated));
  std::printf("  %s\n", mii.toString().c_str());

  // Occupancy per cluster set (level 0).
  for (const auto& record : hca.records) {
    if (record->level != 0) continue;
    std::printf("  level-0 working-set split:");
    std::vector<int> counts(4, 0);
    for (const int child : record->wsChild) {
      ++counts[static_cast<std::size_t>(child)];
    }
    for (int c = 0; c < 4; ++c) std::printf(" set%d=%d", c, counts[c]);
    std::printf("\n");
  }

  // --- Stage 2: post-processing (recv insertion) ------------------------
  const auto mapping = core::buildFinalMapping(kernel.ddg, model, hca);
  std::printf("\nStage 2 — final DDG: %d nodes (%d original + %zu recv)\n",
              mapping.finalDdg.numNodes(), mapping.numOriginalNodes,
              mapping.recvs.size());

  // --- Stage 3: modulo scheduling ---------------------------------------
  const auto sched = sched::moduloSchedule(mapping, model, mii.finalMii);
  if (!sched.ok) {
    std::printf("scheduling failed: %s\n", sched.failureReason.c_str());
    return 1;
  }
  std::printf(
      "\nStage 3 — modulo schedule: II=%d (MII %d), length %d, %d stages, "
      "%d evictions\n",
      sched.schedule.ii, mii.finalMii, sched.schedule.length,
      sched.schedule.stages(), sched.evictions);

  // --- Stage 4: fabric simulation vs reference --------------------------
  const int iterations = 16;
  sim::SimConfig simConfig;
  simConfig.iterations = iterations;
  simConfig.memory = ddg::kernelInterpConfig(kernel, iterations).memory;
  const auto sim = sim::simulate(mapping, model, sched.schedule, simConfig);
  std::printf(
      "\nStage 4 — simulation: %d iterations in %d cycles "
      "(%.2f cycles/iteration; II=%d is the steady-state bound)\n",
      iterations, sim.cycles,
      static_cast<double>(sim.cycles) / iterations, sched.schedule.ii);

  std::string why;
  const bool match = sim::matchesReference(kernel.ddg, mapping, model,
                                           sched.schedule, simConfig, &why);
  std::printf("  reference check: %s%s\n", match ? "MATCH" : "MISMATCH — ",
              match ? "" : why.c_str());
  return match ? 0 : 1;
}
