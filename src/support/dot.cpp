#include "support/dot.hpp"

namespace hca {

DotWriter::DotWriter(std::ostream& os, const std::string& name) : os_(os) {
  os_ << "digraph " << quote(name) << " {\n";
  os_ << "  node [shape=box, fontname=\"Helvetica\"];\n";
}

DotWriter::~DotWriter() { os_ << "}\n"; }

void DotWriter::node(const std::string& id, const std::string& label,
                     const std::string& extraAttrs) {
  os_ << "  " << quote(id) << " [label=" << quote(label);
  if (!extraAttrs.empty()) os_ << ", " << extraAttrs;
  os_ << "];\n";
}

void DotWriter::edge(const std::string& from, const std::string& to,
                     const std::string& label,
                     const std::string& extraAttrs) {
  os_ << "  " << quote(from) << " -> " << quote(to);
  if (!label.empty() || !extraAttrs.empty()) {
    os_ << " [";
    bool need_comma = false;
    if (!label.empty()) {
      os_ << "label=" << quote(label);
      need_comma = true;
    }
    if (!extraAttrs.empty()) {
      if (need_comma) os_ << ", ";
      os_ << extraAttrs;
    }
    os_ << "]";
  }
  os_ << ";\n";
}

void DotWriter::raw(const std::string& line) { os_ << "  " << line << "\n"; }

std::string DotWriter::quote(const std::string& s) {
  // Only double quotes need escaping; backslashes stay intact so DOT label
  // escapes like \n and \l keep working.
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace hca
