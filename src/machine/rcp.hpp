#pragma once

#include <cstdint>
#include <vector>

#include "ddg/opcode.hpp"
#include "machine/pattern_graph.hpp"

/// The Reconfigurable Co-Processor (paper Section 2.1, Figure 1): a
/// non-hierarchical ring of clusters in which each cluster could receive
/// values from `neighborReach` neighbors on each side, but only `inputPorts`
/// connections are simultaneously configurable (K < N). The machine is
/// heterogeneous: only some clusters can issue memory instructions (RCP
/// shares the memory subsystem with the host processor).
namespace hca::machine {

struct RcpConfig {
  int clusters = 8;
  /// Ring reach: a cluster can be fed by neighbors at distance 1..reach in
  /// both directions (reach=2 gives the paper's 4 potential sources).
  int neighborReach = 2;
  /// Input ports per cluster (K): max simultaneously configured sources.
  int inputPorts = 2;
  /// Every i-th cluster owns a memory port (heterogeneity); 1 = all.
  int memClusterStride = 2;
  ddg::LatencyModel latency;
};

/// Pattern graph of the RCP: one cluster node per PE (memory-capable ones
/// get an AG in their resource table), arcs for every potential ring
/// connection.
PatternGraph rcpPatternGraph(const RcpConfig& config);

/// SEE constraints for the RCP: maxInNeighbors = inputPorts.
PgConstraints rcpConstraints(const RcpConfig& config);

}  // namespace hca::machine
