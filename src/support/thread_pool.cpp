#include "support/thread_pool.hpp"

#include "support/check.hpp"

namespace hca {

ThreadPool::ThreadPool(int numThreads) {
  HCA_REQUIRE(numThreads >= 1, "thread pool needs at least one worker");
  workers_.reserve(static_cast<std::size_t>(numThreads));
  for (int i = 0; i < numThreads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stop_ = true;
  }
  workCv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    HCA_CHECK(!stop_, "submit on a stopped thread pool");
    queue_.push_back(std::move(task));
  }
  workCv_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idleCv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

int ThreadPool::resolveThreads(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      workCv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idleCv_.notify_all();
    }
  }
}

}  // namespace hca
