#include "ddg/serialize.hpp"

#include <algorithm>
#include <cstdint>
#include <sstream>

#include "support/check.hpp"
#include "support/str.hpp"

namespace hca::ddg {

namespace {

std::int64_t parseInt(const std::string& value, int line) {
  try {
    std::size_t consumed = 0;
    const std::int64_t parsed = std::stoll(value, &consumed);
    if (consumed != value.size()) {
      throw std::invalid_argument(value);
    }
    return parsed;
  } catch (const std::exception&) {
    throw InvalidArgumentError(
        strCat("line ", line, ": expected an integer, got '", value, "'"));
  }
}

/// Operand src/distance are stored as int32: a value outside the range
/// must be a hard parse error, not a silent wrap to some other node id.
std::int32_t parseInt32(const std::string& value, int line) {
  const std::int64_t parsed = parseInt(value, line);
  HCA_REQUIRE(parsed >= INT32_MIN && parsed <= INT32_MAX,
              "line " << line << ": integer out of range: '" << value << "'");
  return static_cast<std::int32_t>(parsed);
}

Op opFromName(const std::string& name, int line) {
  for (int i = 0; i < kNumOps; ++i) {
    const Op op = static_cast<Op>(i);
    if (opName(op) == name) return op;
  }
  throw InvalidArgumentError(
      strCat("line ", line, ": unknown op '", name, "'"));
}

}  // namespace

std::string toText(const Ddg& ddg) {
  std::ostringstream os;
  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    const DdgNode& node = ddg.node(DdgNodeId(v));
    os << "node " << opName(node.op);
    if (node.imm0 != 0) os << " imm0=" << node.imm0;
    if (node.imm1 != 0) os << " imm1=" << node.imm1;
    if (!node.operands.empty()) {
      os << " ops=";
      for (std::size_t i = 0; i < node.operands.size(); ++i) {
        const Operand& operand = node.operands[i];
        if (i > 0) os << ',';
        os << operand.src.value() << ':' << operand.distance << ':'
           << operand.init;
      }
    }
    if (!node.name.empty()) os << " name=" << node.name;
    os << '\n';
  }
  return os.str();
}

Ddg fromText(const std::string& text) {
  Ddg ddg;
  int lineNumber = 0;
  std::istringstream input(text);
  std::string line;
  while (std::getline(input, line)) {
    ++lineNumber;
    // Strip comments and whitespace.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream tokens(line);
    std::string keyword;
    if (!(tokens >> keyword)) continue;  // blank line
    HCA_REQUIRE(keyword == "node",
                "line " << lineNumber << ": expected 'node', got '"
                        << keyword << "'");
    std::string opToken;
    HCA_REQUIRE(static_cast<bool>(tokens >> opToken),
                "line " << lineNumber << ": missing op");
    DdgNode node;
    node.op = opFromName(opToken, lineNumber);

    std::string field;
    while (tokens >> field) {
      const auto eq = field.find('=');
      HCA_REQUIRE(eq != std::string::npos,
                  "line " << lineNumber << ": malformed field '" << field
                          << "' (expected key=value)");
      const std::string key = field.substr(0, eq);
      const std::string value = field.substr(eq + 1);
      if (key == "imm0") {
        node.imm0 = parseInt(value, lineNumber);
      } else if (key == "imm1") {
        node.imm1 = parseInt(value, lineNumber);
      } else if (key == "name") {
        node.name = value;
      } else if (key == "ops") {
        for (const std::string& triple : strSplit(value, ',')) {
          const auto parts = strSplit(triple, ':');
          HCA_REQUIRE(!parts.empty() && parts.size() <= 3 &&
                          !parts[0].empty(),
                      "line " << lineNumber << ": malformed operand '"
                              << triple << "'");
          Operand operand;
          const std::int32_t src = parseInt32(parts[0], lineNumber);
          HCA_REQUIRE(src >= 0, "line " << lineNumber
                                        << ": negative operand source "
                                        << src);
          operand.src = DdgNodeId(src);
          if (parts.size() >= 2) {
            operand.distance = parseInt32(parts[1], lineNumber);
            HCA_REQUIRE(operand.distance >= 0,
                        "line " << lineNumber
                                << ": negative dependence distance "
                                << operand.distance);
          }
          if (parts.size() >= 3) operand.init = parseInt(parts[2], lineNumber);
          node.operands.push_back(operand);
        }
      } else {
        throw InvalidArgumentError(
            strCat("line ", lineNumber, ": unknown field '", key, "'"));
      }
    }
    ddg.addNode(std::move(node));
  }
  ddg.validate();
  return ddg;
}

}  // namespace hca::ddg
