#include "analysis/source_model.hpp"

#include <algorithm>
#include <deque>
#include <filesystem>
#include <set>
#include <utility>

#include "support/check.hpp"
#include "support/io.hpp"
#include "support/json.hpp"
#include "support/str.hpp"

namespace hca::analysis {
namespace {

namespace fs = std::filesystem;

[[nodiscard]] std::string normalizeSlashes(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  return path;
}

/// Lexically normalizes and returns the path of `p` relative to `root`, or
/// an empty string when `p` does not live under `root`.
[[nodiscard]] std::string relativeToRoot(const fs::path& root,
                                         const fs::path& p) {
  const fs::path normal = p.lexically_normal();
  const fs::path rel = normal.lexically_relative(root);
  if (rel.empty() || rel.native().rfind("..", 0) == 0) return {};
  return normalizeSlashes(rel.generic_string());
}

}  // namespace

std::vector<CompileCommand> parseCompileCommands(const std::string& json) {
  JsonValue parsed;
  std::string error;
  HCA_REQUIRE(parseJson(json, &parsed, &error),
              strCat("compile_commands.json: ", error));
  HCA_REQUIRE(parsed.isArray(),
              "compile_commands.json: expected a top-level array");
  std::vector<CompileCommand> commands;
  commands.reserve(parsed.array.size());
  for (const JsonValue& entry : parsed.array) {
    HCA_REQUIRE(entry.isObject(),
                "compile_commands.json: expected object entries");
    const JsonValue* dir = entry.find("directory");
    const JsonValue* file = entry.find("file");
    HCA_REQUIRE(dir != nullptr && dir->kind == JsonValue::Kind::kString,
                "compile_commands.json: entry missing string 'directory'");
    HCA_REQUIRE(file != nullptr && file->kind == JsonValue::Kind::kString,
                "compile_commands.json: entry missing string 'file'");
    CompileCommand command;
    command.directory = dir->string;
    fs::path filePath(file->string);
    if (filePath.is_relative()) {
      filePath = fs::path(dir->string) / filePath;
    }
    command.file = normalizeSlashes(filePath.lexically_normal().string());
    commands.push_back(std::move(command));
  }
  return commands;
}

ModuleInfo classifyModule(const std::string& relPath) {
  // First path component for top-level trees, second for src/<module>/.
  std::string module;
  const std::size_t slash = relPath.find('/');
  const std::string top =
      slash == std::string::npos ? relPath : relPath.substr(0, slash);
  if (top == "src" && slash != std::string::npos) {
    const std::size_t next = relPath.find('/', slash + 1);
    if (next != std::string::npos) {
      module = relPath.substr(slash + 1, next - slash - 1);
    }
  } else {
    module = top;
  }

  static const std::map<std::string, int> kRanks = {
      {"support", 0},  {"graph", 1},    {"ddg", 2},     {"machine", 2},
      {"see", 3},      {"mapper", 3},   {"sched", 3},   {"baseline", 3},
      {"sim", 3},      {"hca", 4},      {"verify", 5},  {"analysis", 6},
      {"tools", 7},    {"bench", 7},    {"tests", 7},   {"examples", 7},
  };
  const auto it = kRanks.find(module);
  if (it == kRanks.end()) return ModuleInfo{std::move(module), -1};
  return ModuleInfo{it->first, it->second};
}

SourceModel SourceModel::load(const std::string& root,
                              const std::vector<CompileCommand>& commands) {
  const fs::path rootPath = fs::path(root).lexically_normal();
  SourceModel model;
  std::set<std::string> loaded;
  std::deque<std::string> pending;  // repo-relative paths

  for (const CompileCommand& command : commands) {
    const std::string rel = relativeToRoot(rootPath, fs::path(command.file));
    if (!rel.empty() && loaded.insert(rel).second) pending.push_back(rel);
  }

  while (!pending.empty()) {
    const std::string rel = pending.front();
    pending.pop_front();
    const fs::path abs = rootPath / fs::path(rel);
    std::string contents;
    try {
      contents = readFile(abs.string());
    } catch (const IoError&) {
      continue;  // stale compile db entry or deleted header; skip quietly
    }

    SourceFile file;
    file.relPath = rel;
    file.module = classifyModule(rel);
    file.lexed = lex(contents);

    // Resolve quoted includes: includer's directory, then <root>/src, then
    // <root> — the same order the build's -I flags imply.
    const fs::path relDir = fs::path(rel).parent_path();
    for (const IncludeDirective& inc : file.lexed.includes) {
      if (inc.angled) continue;
      const fs::path incPath(normalizeSlashes(inc.path));
      std::string resolved;
      for (const fs::path& base :
           {rootPath / relDir, rootPath / "src", rootPath}) {
        const fs::path candidate = (base / incPath).lexically_normal();
        if (fileExists(candidate.string())) {
          resolved = relativeToRoot(rootPath, candidate);
          break;
        }
      }
      if (resolved.empty()) continue;
      file.repoIncludes.emplace_back(resolved, inc);
      if (loaded.insert(resolved).second) pending.push_back(resolved);
    }
    model.files_.push_back(std::move(file));
  }

  std::sort(model.files_.begin(), model.files_.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.relPath < b.relPath;
            });
  return model;
}

SourceModel SourceModel::loadFromMemory(
    const std::map<std::string, std::string>& files) {
  SourceModel model;
  for (const auto& [rel, contents] : files) {
    SourceFile file;
    file.relPath = normalizeSlashes(rel);
    file.module = classifyModule(file.relPath);
    file.lexed = lex(contents);
    const fs::path relDir = fs::path(file.relPath).parent_path();
    for (const IncludeDirective& inc : file.lexed.includes) {
      if (inc.angled) continue;
      const fs::path incPath(normalizeSlashes(inc.path));
      for (const fs::path& base : {relDir, fs::path("src"), fs::path()}) {
        const std::string candidate =
            normalizeSlashes((base / incPath).lexically_normal()
                                 .generic_string());
        if (files.count(candidate) != 0) {
          file.repoIncludes.emplace_back(candidate, inc);
          break;
        }
      }
    }
    model.files_.push_back(std::move(file));
  }
  std::sort(model.files_.begin(), model.files_.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.relPath < b.relPath;
            });
  return model;
}

const SourceFile* SourceModel::find(const std::string& relPath) const {
  const auto it = std::lower_bound(
      files_.begin(), files_.end(), relPath,
      [](const SourceFile& f, const std::string& p) { return f.relPath < p; });
  if (it == files_.end() || it->relPath != relPath) return nullptr;
  return &*it;
}

}  // namespace hca::analysis
