#pragma once

#include <string>
#include <vector>

#include "ddg/ddg.hpp"
#include "machine/dspfabric.hpp"
#include "support/ids.hpp"

/// Post-hoc hierarchy feasibility check for *flat* assignments.
///
/// The baselines (flat ICA, multilevel partitioning) produce a plain
/// DDG-node -> CN map without reasoning about the MUX hierarchy. This
/// checker derives, for every sub-problem of the interconnect tree, the
/// copy flow its assignment implies, and runs the Mapper on it level by
/// level (propagating the inter-level interfaces exactly like the HCA
/// driver). The assignment is hierarchy-legal iff every Mapper call
/// succeeds — i.e. the reconfigurable wires can actually carry the copies.
namespace hca::baseline {

struct HierarchyCheckResult {
  bool legal = false;
  std::string failureReason;
  /// Largest number of values time-sharing one wire across all levels.
  int maxWirePressure = 0;
  /// Total inter-cluster copies over all levels (arc/value pairs).
  int totalCopies = 0;
  int problemsChecked = 0;
};

/// `assignment` maps every instruction node to a CN (consts ignored).
HierarchyCheckResult checkHierarchyFeasibility(
    const ddg::Ddg& ddg, const machine::DspFabricModel& model,
    const std::vector<CnId>& assignment);

}  // namespace hca::baseline
