#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "ddg/opcode.hpp"
#include "graph/digraph.hpp"
#include "support/ids.hpp"

/// Data Dependency Graph of one loop body.
///
/// Nodes are operations of a single loop iteration; operands reference the
/// producing node together with an *iteration distance*: distance 0 is an
/// intra-iteration dependence, distance d > 0 reads the value the producer
/// computed d iterations earlier (a loop-carried dependence). Loop-carried
/// operands carry an initial value used for the first d iterations, which
/// makes the DDG directly executable by the reference interpreter.
namespace hca::ddg {

struct Operand {
  DdgNodeId src;
  std::int32_t distance = 0;
  /// Value observed while iteration index < distance (live-in).
  std::int64_t init = 0;
};

struct DdgNode {
  Op op = Op::kConst;
  std::vector<Operand> operands;
  std::int64_t imm0 = 0;  // kConst: literal; kLoad/kStore: offset; kClip: lo
  std::int64_t imm1 = 0;  // kClip: hi
  std::string name;       // debug label
};

/// Aggregate statistics consumed by the MII bounds and by the Table 1
/// harness.
struct DdgStats {
  int numInstructions = 0;  // everything but kConst
  int numAluOps = 0;
  int numMemOps = 0;  // loads + stores (DMA requests)
  int numConsts = 0;
};

class Ddg {
 public:
  DdgNodeId addNode(DdgNode node);

  [[nodiscard]] std::int32_t numNodes() const {
    return static_cast<std::int32_t>(nodes_.size());
  }
  [[nodiscard]] const DdgNode& node(DdgNodeId id) const;
  [[nodiscard]] DdgNode& node(DdgNodeId id);

  /// Consumers of each node, as (consumer, operandIndex) pairs.
  struct Use {
    DdgNodeId consumer;
    std::int32_t operandIndex;
  };
  [[nodiscard]] std::vector<Use> usesOf(DdgNodeId id) const;

  [[nodiscard]] DdgStats stats() const;

  /// Checks structural sanity: operand arity per op, ids in range,
  /// non-negative distances, intra-iteration acyclicity, and that every
  /// dependence cycle has positive total distance. Throws
  /// InvalidArgumentError on violation.
  void validate() const;

  /// Dependence digraph view: one graph node per DDG node, one edge per
  /// operand (producer -> consumer). Edge order matches a row-major walk of
  /// the operand lists; `edgeOperand` maps edge ids back.
  struct GraphView {
    graph::Digraph graph;
    /// edge id -> (consumer node, operand index)
    std::vector<std::pair<std::int32_t, std::int32_t>> edgeOperand;
  };
  [[nodiscard]] GraphView graphView() const;

  /// Recurrence-constrained MII: max over dependence cycles of
  /// ceil(total latency / total distance), >= 1.
  [[nodiscard]] std::int64_t miiRec(const LatencyModel& lat) const;

  /// Per-node priority heights: longest latency path to any sink over
  /// intra-iteration edges (the classic modulo-scheduling priority).
  [[nodiscard]] std::vector<std::int64_t> heights(
      const LatencyModel& lat) const;

  /// Nodes in a topological order of the intra-iteration (distance 0)
  /// subgraph.
  [[nodiscard]] std::vector<DdgNodeId> topoOrder() const;

  void toDot(std::ostream& os, const std::string& title = "ddg") const;

 private:
  std::vector<DdgNode> nodes_;
};

}  // namespace hca::ddg
