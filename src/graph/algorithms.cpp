#include "graph/algorithms.hpp"

#include <algorithm>
#include <deque>
#include <limits>

namespace hca::graph {

namespace {
bool keepAll(std::int32_t) { return true; }
}  // namespace

std::optional<std::vector<std::int32_t>> topologicalOrder(
    const Digraph& g,
    const std::function<bool(std::int32_t edgeId)>& keepEdge) {
  const std::int32_t n = g.numNodes();
  std::vector<std::int32_t> indeg(static_cast<std::size_t>(n), 0);
  for (std::int32_t e = 0; e < g.numEdges(); ++e) {
    if (keepEdge(e)) ++indeg[static_cast<std::size_t>(g.edge(e).dst)];
  }
  std::deque<std::int32_t> ready;
  for (std::int32_t v = 0; v < n; ++v) {
    if (indeg[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
  }
  std::vector<std::int32_t> order;
  order.reserve(static_cast<std::size_t>(n));
  while (!ready.empty()) {
    const std::int32_t v = ready.front();
    ready.pop_front();
    order.push_back(v);
    for (std::int32_t e : g.outEdges(v)) {
      if (!keepEdge(e)) continue;
      auto& d = indeg[static_cast<std::size_t>(g.edge(e).dst)];
      if (--d == 0) ready.push_back(g.edge(e).dst);
    }
  }
  if (static_cast<std::int32_t>(order.size()) != n) return std::nullopt;
  return order;
}

std::optional<std::vector<std::int32_t>> topologicalOrder(const Digraph& g) {
  return topologicalOrder(g, keepAll);
}

std::vector<std::vector<std::int32_t>> SccResult::groups() const {
  std::vector<std::vector<std::int32_t>> out(
      static_cast<std::size_t>(count));
  for (std::int32_t v = 0; v < static_cast<std::int32_t>(component.size());
       ++v) {
    out[static_cast<std::size_t>(component[static_cast<std::size_t>(v)])]
        .push_back(v);
  }
  return out;
}

SccResult stronglyConnectedComponents(const Digraph& g) {
  // Iterative Tarjan to avoid stack overflow on deep DDGs.
  const std::int32_t n = g.numNodes();
  SccResult res;
  res.component.assign(static_cast<std::size_t>(n), -1);
  std::vector<std::int32_t> index(static_cast<std::size_t>(n), -1);
  std::vector<std::int32_t> low(static_cast<std::size_t>(n), 0);
  std::vector<bool> onStack(static_cast<std::size_t>(n), false);
  std::vector<std::int32_t> stack;
  std::int32_t nextIndex = 0;

  struct Frame {
    std::int32_t node;
    std::size_t edgePos;
  };
  std::vector<Frame> callStack;

  for (std::int32_t start = 0; start < n; ++start) {
    if (index[static_cast<std::size_t>(start)] != -1) continue;
    callStack.push_back({start, 0});
    index[static_cast<std::size_t>(start)] = nextIndex;
    low[static_cast<std::size_t>(start)] = nextIndex;
    ++nextIndex;
    stack.push_back(start);
    onStack[static_cast<std::size_t>(start)] = true;

    while (!callStack.empty()) {
      Frame& frame = callStack.back();
      const auto v = static_cast<std::size_t>(frame.node);
      const auto& out = g.outEdges(frame.node);
      if (frame.edgePos < out.size()) {
        const std::int32_t w = g.edge(out[frame.edgePos]).dst;
        ++frame.edgePos;
        const auto wi = static_cast<std::size_t>(w);
        if (index[wi] == -1) {
          index[wi] = nextIndex;
          low[wi] = nextIndex;
          ++nextIndex;
          stack.push_back(w);
          onStack[wi] = true;
          callStack.push_back({w, 0});
        } else if (onStack[wi]) {
          low[v] = std::min(low[v], index[wi]);
        }
      } else {
        if (low[v] == index[v]) {
          // frame.node is the root of a component.
          while (true) {
            const std::int32_t w = stack.back();
            stack.pop_back();
            onStack[static_cast<std::size_t>(w)] = false;
            res.component[static_cast<std::size_t>(w)] = res.count;
            if (w == frame.node) break;
          }
          ++res.count;
        }
        const std::int32_t child = frame.node;
        callStack.pop_back();
        if (!callStack.empty()) {
          const auto p = static_cast<std::size_t>(callStack.back().node);
          low[p] = std::min(low[p], low[static_cast<std::size_t>(child)]);
        }
      }
    }
  }
  return res;
}

bool hasCycle(const Digraph& g,
              const std::function<bool(std::int32_t edgeId)>& keepEdge) {
  return !topologicalOrder(g, keepEdge).has_value();
}

std::vector<std::int64_t> longestPathFromSources(
    const Digraph& g,
    const std::function<bool(std::int32_t edgeId)>& keepEdge,
    const std::function<std::int64_t(std::int32_t edgeId)>& weight) {
  const auto order = topologicalOrder(g, keepEdge);
  HCA_REQUIRE(order.has_value(), "longestPathFromSources on a cyclic graph");
  std::vector<std::int64_t> dist(static_cast<std::size_t>(g.numNodes()), 0);
  for (std::int32_t v : *order) {
    for (std::int32_t e : g.outEdges(v)) {
      if (!keepEdge(e)) continue;
      const std::int32_t w = g.edge(e).dst;
      dist[static_cast<std::size_t>(w)] =
          std::max(dist[static_cast<std::size_t>(w)],
                   dist[static_cast<std::size_t>(v)] + weight(e));
    }
  }
  return dist;
}

std::vector<std::int64_t> longestPathToSinks(
    const Digraph& g,
    const std::function<bool(std::int32_t edgeId)>& keepEdge,
    const std::function<std::int64_t(std::int32_t edgeId)>& weight) {
  const auto order = topologicalOrder(g, keepEdge);
  HCA_REQUIRE(order.has_value(), "longestPathToSinks on a cyclic graph");
  std::vector<std::int64_t> dist(static_cast<std::size_t>(g.numNodes()), 0);
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const std::int32_t v = *it;
    for (std::int32_t e : g.outEdges(v)) {
      if (!keepEdge(e)) continue;
      const std::int32_t w = g.edge(e).dst;
      dist[static_cast<std::size_t>(v)] =
          std::max(dist[static_cast<std::size_t>(v)],
                   dist[static_cast<std::size_t>(w)] + weight(e));
    }
  }
  return dist;
}

bool hasPositiveCycle(
    const Digraph& g,
    const std::function<std::int64_t(std::int32_t)>& weight) {
  // Bellman–Ford searching for a *positive* cycle: negate weights and look
  // for a negative cycle. All nodes start at distance 0 (virtual super
  // source), which finds cycles anywhere in the graph.
  const std::int32_t n = g.numNodes();
  if (n == 0) return false;
  std::vector<std::int64_t> dist(static_cast<std::size_t>(n), 0);
  for (std::int32_t round = 0; round < n; ++round) {
    bool changed = false;
    for (std::int32_t e = 0; e < g.numEdges(); ++e) {
      const Edge& edge = g.edge(e);
      const std::int64_t cand =
          dist[static_cast<std::size_t>(edge.src)] - weight(e);
      if (cand < dist[static_cast<std::size_t>(edge.dst)]) {
        dist[static_cast<std::size_t>(edge.dst)] = cand;
        changed = true;
      }
    }
    if (!changed) return false;
  }
  return true;  // still relaxing after n rounds => negative (=positive) cycle
}

std::int64_t minFeasibleInitiationInterval(
    const Digraph& g,
    const std::function<std::int64_t(std::int32_t)>& latency,
    const std::function<std::int64_t(std::int32_t)>& distance) {
  // A cycle with total distance 0 cannot be broken by any II.
  {
    const auto zeroDistOnly = [&](std::int32_t e) { return distance(e) == 0; };
    HCA_REQUIRE(!hasCycle(g, zeroDistOnly),
                "DDG has a dependence cycle with zero total distance");
  }
  std::int64_t hi = 1;
  for (std::int32_t e = 0; e < g.numEdges(); ++e) {
    hi += std::max<std::int64_t>(latency(e), 0);
  }
  std::int64_t lo = 1;
  const auto infeasible = [&](std::int64_t ii) {
    return hasPositiveCycle(
        g, [&](std::int32_t e) { return latency(e) - ii * distance(e); });
  };
  // Binary search the smallest feasible II in [lo, hi]. hi is always
  // feasible: any cycle has distance >= 1 and total latency <= hi - 1.
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (infeasible(mid)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::vector<std::int32_t> shortestPath(
    const Digraph& g, std::int32_t src, std::int32_t dst,
    const std::function<bool(std::int32_t edgeId)>& keepEdge) {
  HCA_REQUIRE(src >= 0 && src < g.numNodes(), "shortestPath: bad src");
  HCA_REQUIRE(dst >= 0 && dst < g.numNodes(), "shortestPath: bad dst");
  std::vector<std::int32_t> parent(static_cast<std::size_t>(g.numNodes()),
                                   -2);
  parent[static_cast<std::size_t>(src)] = -1;
  std::deque<std::int32_t> queue{src};
  while (!queue.empty()) {
    const std::int32_t v = queue.front();
    queue.pop_front();
    if (v == dst) break;
    for (std::int32_t e : g.outEdges(v)) {
      if (!keepEdge(e)) continue;
      const std::int32_t w = g.edge(e).dst;
      if (parent[static_cast<std::size_t>(w)] != -2) continue;
      parent[static_cast<std::size_t>(w)] = v;
      queue.push_back(w);
    }
  }
  if (parent[static_cast<std::size_t>(dst)] == -2) return {};
  std::vector<std::int32_t> path;
  for (std::int32_t v = dst; v != -1; v = parent[static_cast<std::size_t>(v)]) {
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<bool> reachableFrom(
    const Digraph& g, std::int32_t src,
    const std::function<bool(std::int32_t edgeId)>& keepEdge) {
  std::vector<bool> seen(static_cast<std::size_t>(g.numNodes()), false);
  if (src < 0 || src >= g.numNodes()) return seen;
  seen[static_cast<std::size_t>(src)] = true;
  std::deque<std::int32_t> queue{src};
  while (!queue.empty()) {
    const std::int32_t v = queue.front();
    queue.pop_front();
    for (std::int32_t e : g.outEdges(v)) {
      if (!keepEdge(e)) continue;
      const std::int32_t w = g.edge(e).dst;
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = true;
        queue.push_back(w);
      }
    }
  }
  return seen;
}

}  // namespace hca::graph
