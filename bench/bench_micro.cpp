// E6: google-benchmark micro-benchmarks of the tool-chain components:
// recurrence-MII computation, the reference interpreter, one SEE run, the
// Mapper, the full HCA pipeline, the modulo scheduler, plus the PR's
// copy-vs-delta beam expansion and arena-vs-heap allocation comparisons.
//
// Emits BENCH_micro.json (google-benchmark JSON) unless the caller passes
// an explicit --benchmark_out flag.

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "ddg/interp.hpp"
#include "ddg/kernels.hpp"
#include "hca/driver.hpp"
#include "hca/mii.hpp"
#include "hca/postprocess.hpp"
#include "machine/rcp.hpp"
#include "mapper/mapper.hpp"
#include "sched/modulo.hpp"
#include "see/engine.hpp"
#include "support/arena.hpp"
#include "support/context.hpp"

namespace {

using namespace hca;

machine::DspFabricModel paperFabric() {
  machine::DspFabricConfig config;
  config.n = config.m = config.k = 8;
  return machine::DspFabricModel(config);
}

/// Owns the kernel + pattern graph that a SeeProblem points into, so the
/// single-level SEE benchmarks can share one setup.
struct SeeFixture {
  ddg::Kernel kernel = ddg::buildFir2Dim();
  machine::RcpConfig config;
  machine::PatternGraph pg;
  see::SeeProblem problem;

  SeeFixture() {
    config.clusters = 8;
    config.inputPorts = 4;
    config.memClusterStride = 1;
    pg = machine::rcpPatternGraph(config);
    problem.ddg = &kernel.ddg;
    for (std::int32_t v = 0; v < kernel.ddg.numNodes(); ++v) {
      if (ddg::isInstruction(kernel.ddg.node(DdgNodeId(v)).op)) {
        problem.workingSet.emplace_back(v);
      }
    }
    problem.pg = &pg;
    problem.constraints = machine::rcpConstraints(config);
    problem.inWiresPerCluster = config.inputPorts;
    problem.outWiresPerCluster = config.inputPorts;
  }
};

void BM_MiiRec(benchmark::State& state) {
  const auto kernel =
      ddg::table1Kernels()[static_cast<std::size_t>(state.range(0))];
  const ddg::LatencyModel lat;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.ddg.miiRec(lat));
  }
}
BENCHMARK(BM_MiiRec)->DenseRange(0, 3);

void BM_Interpreter(benchmark::State& state) {
  const auto kernel = ddg::buildIdctHor();
  const auto config = ddg::kernelInterpConfig(kernel, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddg::interpret(kernel.ddg, config));
  }
}
BENCHMARK(BM_Interpreter);

void BM_SeeSingleLevel(benchmark::State& state) {
  // One RCP assignment: the paper's single-level framework workload.
  const SeeFixture fx;
  see::SeeOptions options;
  options.weights.targetIi = 8;
  const see::SpaceExplorationEngine engine(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(fx.problem));
  }
}
BENCHMARK(BM_SeeSingleLevel);

void BM_SeeCopyVsDelta(benchmark::State& state) {
  // The PR's core trade: arg 0 = delta/CoW beam expansion (default path),
  // arg 1 = legacy deep-copy expansion. Identical results by contract; the
  // ratio of the two rows is the per-SEE-run speedup.
  const SeeFixture fx;
  see::SeeOptions options;
  options.weights.targetIi = 8;
  options.legacySearch = state.range(0) != 0;
  const see::SpaceExplorationEngine engine(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(fx.problem));
  }
  const auto result = engine.run(fx.problem);
  state.counters["copies_avoided"] =
      static_cast<double>(result.stats.copiesAvoided);
  state.counters["snapshots"] =
      static_cast<double>(result.stats.snapshotsMaterialized);
  state.counters["arena_peak_bytes"] =
      static_cast<double>(result.stats.arenaBytesPeak);
}
BENCHMARK(BM_SeeCopyVsDelta)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("legacy");

void BM_ArenaAlloc(benchmark::State& state) {
  // Steady-state beam-step allocation pattern: a burst of small blocks,
  // then a wholesale reset. After warm-up the arena performs zero heap
  // allocations per iteration (reset keeps the chunks).
  const int blocks = static_cast<int>(state.range(0));
  MonotonicArena arena;
  for (auto _ : state) {
    for (int i = 0; i < blocks; ++i) {
      void* p = arena.allocate(64, 8);
      benchmark::DoNotOptimize(p);
    }
    arena.reset();
  }
  state.counters["reserved_bytes"] =
      static_cast<double>(arena.bytesReserved());
  state.SetItemsProcessed(state.iterations() * blocks);
}
BENCHMARK(BM_ArenaAlloc)->Arg(64)->Arg(1024)->ArgName("blocks");

void BM_HeapAlloc(benchmark::State& state) {
  // The same burst served by operator new: one malloc + one free per
  // block, every iteration. Baseline for BM_ArenaAlloc.
  const int blocks = static_cast<int>(state.range(0));
  std::vector<std::unique_ptr<char[]>> live;
  live.reserve(static_cast<std::size_t>(blocks));
  for (auto _ : state) {
    for (int i = 0; i < blocks; ++i) {
      live.emplace_back(new char[64]);
      benchmark::DoNotOptimize(live.back().get());
    }
    live.clear();
  }
  state.SetItemsProcessed(state.iterations() * blocks);
}
BENCHMARK(BM_HeapAlloc)->Arg(64)->Arg(1024)->ArgName("blocks");

void BM_Mapper(benchmark::State& state) {
  machine::PatternGraph pg;
  for (int i = 0; i < 4; ++i) {
    pg.addCluster(machine::ResourceTable(4, 4));
  }
  pg.connectClustersCompletely();
  machine::CopyFlow flow(pg);
  int v = 0;
  for (int s = 0; s < 4; ++s) {
    for (int d = 0; d < 4; ++d) {
      if (s == d) continue;
      flow.addCopy(*pg.arcBetween(ClusterId(s), ClusterId(d)), ValueId(v++));
      flow.addCopy(*pg.arcBetween(ClusterId(s), ClusterId(d)), ValueId(v++));
    }
  }
  mapper::MapperInput input;
  input.pg = &pg;
  input.flow = &flow;
  input.inWiresPerChild = 8;
  input.outWiresPerChild = 8;
  const mapper::Mapper mapperPass;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapperPass.map(input));
  }
}
BENCHMARK(BM_Mapper);

void BM_HcaFullPipeline(benchmark::State& state) {
  const auto kernel =
      ddg::table1Kernels()[static_cast<std::size_t>(state.range(0))];
  const auto model = paperFabric();
  const core::HcaDriver driver(model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(driver.run(kernel.ddg));
  }
}
BENCHMARK(BM_HcaFullPipeline)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

void BM_ModuloScheduler(benchmark::State& state) {
  const auto kernel = ddg::buildFir2Dim();
  const auto model = paperFabric();
  const core::HcaDriver driver(model);
  const auto hca = driver.run(kernel.ddg);
  if (!hca.legal) {
    state.SkipWithError("clusterization failed");
    return;
  }
  const auto mapping = core::buildFinalMapping(kernel.ddg, model, hca);
  const auto mii = core::computeMii(kernel.ddg, model, hca);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::moduloSchedule(mapping, model, mii.finalMii));
  }
}
BENCHMARK(BM_ModuloScheduler);

}  // namespace

// Like BENCHMARK_MAIN(), but defaults --benchmark_out to BENCH_micro.json
// so every run leaves a machine-readable record next to the binary, and
// stamps the library's build provenance into the output context (the
// committed BENCH_micro.json was once generated from a debug build and
// nothing noticed). `--strict-build` makes a debug-grade build a hard
// error instead of a warning — CI regenerating a committed baseline
// passes it.
int main(int argc, char** argv) {
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc) + 2);
  bool hasOut = false;
  bool strictBuild = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) hasOut = true;
    if (std::strcmp(argv[i], "--strict-build") == 0) {
      strictBuild = true;
      continue;  // ours, not google-benchmark's
    }
    args.push_back(argv[i]);
  }
  const bool debugBuild = hca::warnIfDebugBuild("bench_micro");
  if (debugBuild && strictBuild) return 1;
  const hca::RunContext context = hca::RunContext::current();
  benchmark::AddCustomContext("hca_git_sha", context.gitSha);
  benchmark::AddCustomContext("hca_cmake_build_type", context.buildType);
  // Named apart from google-benchmark's own "library_build_type" (which
  // reports the *benchmark* library's build and cannot be overridden).
  benchmark::AddCustomContext("hca_library_build_type",
                              context.ndebug ? "release" : "debug");
  std::string outFlag = "--benchmark_out=BENCH_micro.json";
  std::string fmtFlag = "--benchmark_out_format=json";
  if (!hasOut) {
    args.push_back(outFlag.data());
    args.push_back(fmtFlag.data());
  }
  int numArgs = static_cast<int>(args.size());
  benchmark::Initialize(&numArgs, args.data());
  if (benchmark::ReportUnrecognizedArguments(numArgs, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
