// hcac — the HCA command-line driver.
//
// Reads a loop-body DDG (from a text file in the `ddg/serialize.hpp`
// format, or one of the built-in Table 1 kernels), clusterizes it onto a
// DSPFabric instance, and optionally schedules, simulates and emits DOT /
// reconfiguration output.
//
//   hcac --kernel idcthor --schedule --simulate
//   hcac --file loop.ddg --n 4 --m 4 --k 4 --dot-assignment out.dot
//   hcac --kernel fir2dim --emit-reconfig
//   hcac --kernel fir2dim --faults "cn:3 cn:17" --failure-policy degrade
//   hcac --kernel h264deblocking --checkpoint-out run.ckpt --resume
//   hcac --batch manifest.json --report-dir reports/
//
// Exit codes: 0 success, 1 schedule/simulation failure, 2 invalid input,
// 3 internal error, 4 no legal mapping (or jobs failed in --batch mode),
// 5 I/O failure writing an output artifact.
//
// SIGINT/SIGTERM trip the run's cancellation token: the search unwinds at
// its next poll, best-so-far artifacts (checkpoint, report, trace) are
// still written, and the process exits through the normal code paths. A
// second signal exits immediately.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ddg/kernels.hpp"
#include "ddg/serialize.hpp"
#include "machine/fault.hpp"
#include "verify/coherency.hpp"
#include "hca/batch.hpp"
#include "hca/checkpoint.hpp"
#include "hca/diff.hpp"
#include "hca/driver.hpp"
#include "hca/mii.hpp"
#include "hca/postprocess.hpp"
#include "hca/report.hpp"
#include "hca/visualize.hpp"
#include "sched/modulo.hpp"
#include "sched/regpressure.hpp"
#include "sim/dma.hpp"
#include "sim/simulator.hpp"
#include "support/check.hpp"
#include "support/context.hpp"
#include "support/history.hpp"
#include "support/io.hpp"
#include "support/signals.hpp"
#include "support/str.hpp"
#include "support/thread_pool.hpp"
#include "verify/verify.hpp"

using namespace hca;

namespace {

void usage() {
  std::printf(
      "usage: hcac [--kernel NAME | --file PATH] [options]\n"
      "  --kernel NAME        built-in kernel: fir2dim idcthor mpeg2inter\n"
      "                       h264deblocking\n"
      "  --file PATH          DDG in the text format of ddg/serialize.hpp\n"
      "  --n/--m/--k INT      MUX bandwidths (default 8/8/8)\n"
      "  --faults LIST        dead resources, e.g. \"cn:3 wire:2:out\"\n"
      "                       (see machine/fault.hpp for the syntax)\n"
      "  --failure-policy P   strict (default) or degrade: degrade never\n"
      "                       throws and walks the fallback ladder\n"
      "  --deadline-ms INT    wall-clock budget for the whole run (0 = off)\n"
      "  --max-beam-steps INT per-attempt SEE expansion budget (0 = off)\n"
      "  --threads INT        outer-sweep portfolio width (default 1;\n"
      "                       0 = hardware_concurrency). Clamped to the\n"
      "                       core count unless --oversubscribe is given\n"
      "  --oversubscribe      honor a --threads value above the core count\n"
      "  --legacy-see         use the materialized (deep-copy) SEE beam\n"
      "                       loop instead of the copy-on-write delta path\n"
      "                       (byte-identical results; for comparison)\n"
      "  --dominance-pruning  prune discarded beam states strictly\n"
      "                       dominated by a sibling and report the count\n"
      "                       (seeDominancePruned); never changes the\n"
      "                       surviving beam or the mapping (off by\n"
      "                       default: the scan is quadratic in frontier\n"
      "                       size)\n"
      "  --verify-each        run every registered invariant check between\n"
      "                       pipeline stages and on the final result\n"
      "  --verify LIST        like --verify-each, restricted to a comma-\n"
      "                       separated check list (e.g.\n"
      "                       --verify=see-solution,ili-conservation)\n"
      "  --schedule           run the modulo scheduler after HCA\n"
      "  --simulate ITER      run the fabric simulator (built-in kernels)\n"
      "  --emit-reconfig      print the MUX reconfiguration program\n"
      "  --dot-tree PATH      write the problem tree as GraphViz DOT\n"
      "  --dot-assignment PATH  write the clusterized DDG as DOT\n"
      "  --trace-out PATH     write the run's span tree as Chrome\n"
      "                       trace_event JSON (chrome://tracing, perfetto)\n"
      "  --report-out PATH    write the structured run report as JSON\n"
      "  --stats              print the metrics registry after the run\n"
      "  --checkpoint-out PATH  crash-safe checkpoint file: the outer sweep\n"
      "                       records every completed failed attempt (plus\n"
      "                       the sub-problem cache) so an interrupted run\n"
      "                       can be resumed without repeating work\n"
      "  --checkpoint-every-ms INT  throttle checkpoint writes to at most\n"
      "                       one per interval (default 0 = every attempt)\n"
      "  --resume             resume from --checkpoint-out; a missing file\n"
      "                       starts fresh, a corrupt or foreign one is\n"
      "                       invalid input (exit 2). The resumed run's\n"
      "                       result and stats are byte-identical to an\n"
      "                       uninterrupted run\n"
      "  --memory-budget-mb INT  soft memory ceiling: bounds the sub-\n"
      "                       problem cache and the SEE arenas; an attempt\n"
      "                       that would blow it fails cleanly and the\n"
      "                       ladder re-plans (0 = unlimited)\n"
      "  --batch PATH         run a manifest of compile jobs with per-job\n"
      "                       isolation, deadlines, retry with backoff and\n"
      "                       checkpoints (see hca/batch.hpp for the JSON\n"
      "                       schema); prints a summary JSON, exit 0 only\n"
      "                       when every job produced a legal mapping\n"
      "  --report-dir DIR     batch mode: write one run report per job\n"
      "                       into DIR (atomic, best-so-far on failure)\n"
      "  --progress-out FILE  batch mode: append a JSONL progress heartbeat\n"
      "                       (job state transitions, periodic heartbeat,\n"
      "                       ETA; see hca/progress.hpp). Append-only across\n"
      "                       kill-and-resume: seq keeps increasing\n"
      "  --progress-tty       batch mode: also print a one-line progress\n"
      "                       summary per heartbeat\n"
      "  --heartbeat-ms INT   progress heartbeat period (default 1000)\n"
      "  --run-id ID          stamp ID into every report/history context\n"
      "                       block (e.g. a CI job id); never derived from\n"
      "                       the clock\n"
      "  --history-out FILE   append this run's baseline-history line\n"
      "                       (workload, machine, context, wall-clock,\n"
      "                       deterministic counters) to the JSONL FILE\n"
      "  --metrics-out FILE   write the run's metrics registry in\n"
      "                       OpenMetrics text format\n"
      "  --compare OLD NEW    diff two run reports (same workload/machine):\n"
      "                       deterministic counters compare exactly,\n"
      "                       wall-clock gates against a variance-aware\n"
      "                       threshold from --history. Exit 0 = no\n"
      "                       regression, 1 = regression, 2 = reports not\n"
      "                       comparable\n"
      "  --history FILE       compare mode: baseline history for the\n"
      "                       wall-clock threshold (mean + k*stddev)\n"
      "  --wall-sigma K       compare mode: threshold width k (default 3)\n"
      "  --diff-out FILE      compare mode: write the machine verdict JSON\n"
      "  --ignore-counters L  compare mode: comma-separated deterministic\n"
      "                       series (e.g. stats.seeDominancePruned) that\n"
      "                       never gate; differences become notes. A\n"
      "                       trailing '*' matches a prefix, e.g.\n"
      "                       metrics.see.dominance_pruned.*\n"
      "  (every VALUE flag also accepts --flag=VALUE)\n");
}

/// Integer flag parsing that reports bad values as invalid input (exit 2)
/// instead of an unhandled std::invalid_argument (exit 3).
int parseIntFlag(const std::string& flag, const std::string& text) {
  try {
    std::size_t pos = 0;
    const int value = std::stoi(text, &pos);
    HCA_REQUIRE(pos == text.size(), "trailing garbage");
    return value;
  } catch (const std::exception&) {
    throw InvalidArgumentError(
        "flag " + flag + " needs an integer, got '" + text + "'");
  }
}

/// Double flag parsing with the same exit-2 contract as parseIntFlag.
double parseDoubleFlag(const std::string& flag, const std::string& text) {
  try {
    std::size_t pos = 0;
    const double value = std::stod(text, &pos);
    HCA_REQUIRE(pos == text.size(), "trailing garbage");
    return value;
  } catch (const std::exception&) {
    throw InvalidArgumentError(
        "flag " + flag + " needs a number, got '" + text + "'");
  }
}

/// `hcac --compare OLD NEW`: diff two run reports, print the human table,
/// optionally write the machine verdict. Exit 0 = no regression, 1 =
/// regression; non-comparable reports throw (exit 2).
int runCompareTool(const std::string& oldPath, const std::string& newPath,
                   const std::string& historyPath, double wallSigma,
                   const std::string& diffOut,
                   const std::vector<std::string>& ignoreCounters) {
  HCA_REQUIRE(fileExists(oldPath),
              "report '" << oldPath << "' does not exist");
  HCA_REQUIRE(fileExists(newPath),
              "report '" << newPath << "' does not exist");
  core::DiffOptions options;
  options.wallSigma = wallSigma;
  options.ignoreCounters = ignoreCounters;
  if (!historyPath.empty()) options.history = loadHistory(historyPath);
  const core::ReportDiff diff =
      core::diffReportTexts(readFile(oldPath), readFile(newPath), options);
  std::ostringstream table;
  core::printReportDiff(table, diff);
  std::printf("%s", table.str().c_str());
  if (!diffOut.empty()) {
    atomicWriteFile(diffOut, core::reportDiffJson(diff) + "\n");
    std::printf("diff verdict written to %s\n", diffOut.c_str());
  }
  return diff.regression() ? 1 : 0;
}

/// `hcac --batch`: parse the manifest, run the jobs under the shutdown
/// token, print (and optionally write) the summary JSON.
int runBatchTool(const std::string& manifestPath, const std::string& reportDir,
                 const std::string& reportOut,
                 const core::BatchOptions& batchTemplate,
                 const core::HcaOptions& baseOptions) {
  // A missing/unreadable manifest is bad input (exit 2), not an artifact
  // write failure (exit 5).
  HCA_REQUIRE(fileExists(manifestPath),
              "batch manifest '" << manifestPath << "' does not exist");
  const auto jobs = core::parseManifest(readFile(manifestPath));
  core::BatchOptions batchOptions = batchTemplate;
  batchOptions.cancel = &shutdownToken();
  batchOptions.reportDir = reportDir;
  batchOptions.base = baseOptions;
  batchOptions.observer = [](const core::BatchJob& job, int tryNumber,
                             const std::string& event) {
    std::printf("batch: %-20s try %d: %s\n", job.name.c_str(), tryNumber,
                event.c_str());
    std::fflush(stdout);
  };
  const core::BatchSummary summary = core::runBatch(jobs, batchOptions);
  const std::string json = core::batchSummaryJson(summary);
  std::printf("%s\n", json.c_str());
  if (!reportOut.empty()) {
    atomicWriteFile(reportOut, json + "\n");
    std::printf("batch summary written to %s\n", reportOut.c_str());
  }
  if (shutdownSignal() != 0) {
    std::fprintf(stderr, "hcac: batch interrupted by signal %d\n",
                 shutdownSignal());
  }
  return summary.allOk() ? 0 : 4;
}

int runTool(int argc, char** argv) {
  std::string kernelName;
  std::string filePath;
  int n = 8, m = 8, k = 8;
  std::string faultsText;
  std::string failurePolicy = "strict";
  int deadlineMs = 0;
  int maxBeamSteps = 0;
  int numThreads = 1;
  bool oversubscribe = false;
  bool legacySee = false;
  bool dominancePruning = false;
  bool schedule = false;
  int simulateIterations = 0;
  bool emitReconfig = false;
  std::string dotTree, dotAssignment;
  std::string traceOut, reportOut;
  bool printStats = false;
  bool verifyEach = false;
  std::vector<std::string> verifyChecks;
  std::string checkpointOut;
  int checkpointEveryMs = 0;
  bool resume = false;
  int memoryBudgetMb = 0;
  std::string batchManifest;
  std::string reportDir;
  std::string progressOut;
  bool progressTty = false;
  int heartbeatMs = 1000;
  std::string runId;
  std::string historyOut;
  std::string metricsOut;
  std::string compareOld, compareNew;
  std::string historyIn;
  double wallSigma = 3.0;
  std::string diffOut;
  std::vector<std::string> ignoreCounters;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Both `--flag value` and `--flag=value` are accepted.
    bool hasInline = false;
    std::string inlineValue;
    if (const std::size_t eq = arg.find('=');
        eq != std::string::npos && arg.rfind("--", 0) == 0) {
      hasInline = true;
      inlineValue = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    }
    const auto value = [&]() -> std::string {
      if (hasInline) return inlineValue;
      if (i + 1 >= argc) {
        throw InvalidArgumentError("missing value for " + arg);
      }
      return argv[++i];
    };
    if (arg == "--kernel") kernelName = value();
    else if (arg == "--file") filePath = value();
    else if (arg == "--n") n = parseIntFlag(arg, value());
    else if (arg == "--m") m = parseIntFlag(arg, value());
    else if (arg == "--k") k = parseIntFlag(arg, value());
    else if (arg == "--faults") faultsText = value();
    else if (arg == "--failure-policy") failurePolicy = value();
    else if (arg == "--deadline-ms") deadlineMs = parseIntFlag(arg, value());
    else if (arg == "--max-beam-steps")
      maxBeamSteps = parseIntFlag(arg, value());
    else if (arg == "--threads") numThreads = parseIntFlag(arg, value());
    else if (arg == "--oversubscribe") oversubscribe = true;
    else if (arg == "--legacy-see") legacySee = true;
    else if (arg == "--dominance-pruning") dominancePruning = true;
    else if (arg == "--verify-each") verifyEach = true;
    else if (arg == "--verify") {
      verifyEach = true;
      verifyChecks = verify::parseCheckList(value());  // bad name -> exit 2
    }
    else if (arg == "--schedule") schedule = true;
    else if (arg == "--simulate")
      simulateIterations = parseIntFlag(arg, value());
    else if (arg == "--emit-reconfig") emitReconfig = true;
    else if (arg == "--dot-tree") dotTree = value();
    else if (arg == "--dot-assignment") dotAssignment = value();
    else if (arg == "--trace-out") traceOut = value();
    else if (arg == "--report-out") reportOut = value();
    else if (arg == "--stats") printStats = true;
    else if (arg == "--checkpoint-out") checkpointOut = value();
    else if (arg == "--checkpoint-every-ms")
      checkpointEveryMs = parseIntFlag(arg, value());
    else if (arg == "--resume") resume = true;
    else if (arg == "--memory-budget-mb")
      memoryBudgetMb = parseIntFlag(arg, value());
    else if (arg == "--batch") batchManifest = value();
    else if (arg == "--report-dir") reportDir = value();
    else if (arg == "--progress-out") progressOut = value();
    else if (arg == "--progress-tty") progressTty = true;
    else if (arg == "--heartbeat-ms") heartbeatMs = parseIntFlag(arg, value());
    else if (arg == "--run-id") runId = value();
    else if (arg == "--history-out") historyOut = value();
    else if (arg == "--metrics-out") metricsOut = value();
    else if (arg == "--compare") {
      compareOld = value();
      if (i + 1 >= argc) {
        throw InvalidArgumentError("--compare needs two report paths");
      }
      compareNew = argv[++i];
    }
    else if (arg == "--history") historyIn = value();
    else if (arg == "--wall-sigma") wallSigma = parseDoubleFlag(arg, value());
    else if (arg == "--diff-out") diffOut = value();
    else if (arg == "--ignore-counters") {
      std::istringstream list(value());
      std::string name;
      while (std::getline(list, name, ',')) {
        if (!name.empty()) ignoreCounters.push_back(name);
      }
    }
    else {
      usage();
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }
  HCA_REQUIRE(failurePolicy == "strict" || failurePolicy == "degrade",
              "--failure-policy must be 'strict' or 'degrade', got '"
                  << failurePolicy << "'");
  HCA_REQUIRE(!resume || !checkpointOut.empty(),
              "--resume needs --checkpoint-out (the file to resume from)");

  if (!compareOld.empty()) {
    HCA_REQUIRE(kernelName.empty() && filePath.empty() &&
                    batchManifest.empty(),
                "--compare is exclusive with --kernel/--file/--batch (it "
                "reads two existing reports)");
    return runCompareTool(compareOld, compareNew, historyIn, wallSigma,
                          diffOut, ignoreCounters);
  }

  installShutdownHandlers();

  if (!batchManifest.empty()) {
    HCA_REQUIRE(kernelName.empty() && filePath.empty(),
                "--batch is exclusive with --kernel/--file (jobs name their "
                "own inputs)");
    core::HcaOptions base;
    if (failurePolicy == "degrade") {
      base.failurePolicy = core::FailurePolicy::kDegrade;
    }
    base.maxBeamSteps = maxBeamSteps;
    base.see.legacySearch = legacySee;
    base.see.dominancePruning = dominancePruning;
    base.verifyEach = verifyEach;
    base.verifyChecks = verifyChecks;
    core::BatchOptions batchTemplate;
    batchTemplate.progressPath = progressOut;
    batchTemplate.progressTty = progressTty;
    batchTemplate.heartbeatMs = heartbeatMs;
    batchTemplate.runId = runId;
    return runBatchTool(batchManifest, reportDir, reportOut, batchTemplate,
                        base);
  }
  if (kernelName.empty() == filePath.empty()) {
    usage();
    return 2;
  }

  // --- load the DDG -------------------------------------------------------
  ddg::Ddg ddg;
  const ddg::Kernel* kernel = nullptr;
  std::vector<ddg::Kernel> kernels;
  if (!kernelName.empty()) {
    kernels = ddg::table1Kernels();
    for (auto& candidate : kernels) {
      if (candidate.name == kernelName) kernel = &candidate;
    }
    if (kernel == nullptr) {
      std::fprintf(stderr, "unknown kernel '%s'\n", kernelName.c_str());
      return 2;
    }
    ddg = kernel->ddg;
  } else {
    std::ifstream in(filePath);
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n", filePath.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    ddg = ddg::fromText(buffer.str());  // malformed input -> exit 2
  }
  const auto stats = ddg.stats();
  std::printf("DDG: %d instructions (%d memory ops)\n",
              stats.numInstructions, stats.numMemOps);

  // --- clusterize ----------------------------------------------------------
  machine::DspFabricConfig config;
  config.n = n;
  config.m = m;
  config.k = k;
  const machine::FaultSet faults = machine::FaultSet::parse(faultsText);
  const machine::DspFabricModel model(config, faults);
  std::printf("Machine: %s\n", config.toString().c_str());
  if (model.hasFaults()) {
    std::printf("Faults: %s (%d of %d CNs alive)\n",
                faults.toString().c_str(), model.aliveCns(),
                model.totalCns());
  }

  core::HcaOptions hcaOptions;
  if (failurePolicy == "degrade") {
    hcaOptions.failurePolicy = core::FailurePolicy::kDegrade;
  }
  hcaOptions.deadlineMs = deadlineMs;
  hcaOptions.maxBeamSteps = maxBeamSteps;
  hcaOptions.numThreads = numThreads;
  hcaOptions.allowOversubscribe = oversubscribe;
  hcaOptions.see.legacySearch = legacySee;
  hcaOptions.see.dominancePruning = dominancePruning;
  hcaOptions.verifyEach = verifyEach;
  hcaOptions.verifyChecks = verifyChecks;
  hcaOptions.memoryBudgetBytes =
      static_cast<std::int64_t>(memoryBudgetMb) * 1024 * 1024;
  hcaOptions.externalCancel = &shutdownToken();
  std::unique_ptr<core::CheckpointManager> checkpoint;
  if (!checkpointOut.empty()) {
    checkpoint = std::make_unique<core::CheckpointManager>(checkpointOut,
                                                           checkpointEveryMs);
    if (resume && checkpoint->loadForResume()) {
      // Corruption / wrong-run throws CheckpointError -> exit 2.
      std::printf("resuming from %s (%d recorded attempts)\n",
                  checkpointOut.c_str(), checkpoint->attemptsRecorded());
    }
    hcaOptions.checkpoint = checkpoint.get();
  }
  Tracer tracer(/*enabled=*/!traceOut.empty());
  if (!traceOut.empty()) hcaOptions.tracer = &tracer;
  const core::HcaDriver driver(model, hcaOptions);
  const auto result = driver.run(ddg);

  if (checkpoint != nullptr) {
    if (result.legal) {
      // A finished run has nothing to resume into.
      removeFileIfExists(checkpoint->path());
    } else {
      // Persist the final state past the write throttle, so `--resume`
      // (after a signal, deadline or plain failure) skips all completed
      // attempts.
      checkpoint->flush();
      std::printf("checkpoint written to %s (%d recorded attempts)\n",
                  checkpointOut.c_str(), checkpoint->attemptsRecorded());
    }
  }
  if (shutdownSignal() != 0) {
    std::fprintf(stderr,
                 "hcac: interrupted by signal %d — reporting best-so-far\n",
                 shutdownSignal());
  }

  // Observability artifacts are written for every *completed* run — legal
  // or not, the span tree and the metrics explain what the search did.
  // All of them go through the atomic write path: a crash mid-write never
  // leaves a truncated artifact, and an I/O failure is exit 5 (IoError).
  if (!traceOut.empty()) {
    std::ostringstream out;
    tracer.writeChromeJson(out);
    atomicWriteFile(traceOut, out.str());
    std::printf("trace written to %s (%zu spans)\n", traceOut.c_str(),
                tracer.spanCount());
  }
  core::ReportMeta meta;
  meta.workload = kernelName.empty() ? filePath : kernelName;
  meta.machine = config.toString();
  meta.threads = ThreadPool::effectiveThreads(numThreads, oversubscribe);
  meta.context = RunContext::current(runId);
  if (!reportOut.empty()) {
    atomicWriteFile(reportOut,
                    core::runReportJson(result, &model, &meta) + "\n");
    std::printf("report written to %s\n", reportOut.c_str());
  }
  if (!historyOut.empty()) {
    appendHistoryLine(historyOut,
                      historyLineJson(core::historyRecordFor(result, meta)));
    std::printf("history line appended to %s\n", historyOut.c_str());
  }
  if (!metricsOut.empty()) {
    std::ostringstream om;
    result.metrics.writeOpenMetrics(om);
    atomicWriteFile(metricsOut, om.str());
    std::printf("metrics written to %s (OpenMetrics)\n", metricsOut.c_str());
  }
  if (printStats) {
    std::ostringstream statsText;
    core::printRunStats(statsText, result);
    std::printf("%s", statsText.str().c_str());
  }

  if (!result.legal) {
    if (result.failure != nullptr) {
      std::fprintf(stderr, "hcac: no legal mapping: %s\n",
                   result.failure->toString().c_str());
      // Degrade-mode reports fold input/internal errors into the result;
      // surface them with the same exit codes the strict path uses.
      switch (result.failure->cause) {
        case core::FailureCause::kInvalidInput: return 2;
        case core::FailureCause::kInternalError: return 3;
        default: return 4;
      }
    }
    std::fprintf(stderr, "hcac: no legal mapping: %s\n",
                 result.failureReason.c_str());
    return 4;
  }
  if (!result.fallbackUsed.empty()) {
    std::printf("fallback used: %s\n", result.fallbackUsed.c_str());
  }
  const auto mii = core::computeMii(ddg, model, result);
  std::printf("legal clusterization — %s\n", mii.toString().c_str());
  const auto violations = core::checkCoherency(ddg, model, result);
  std::printf("coherency: %s\n", violations.empty() ? "clean" : "BROKEN");

  // With verification on, the driver already ran the checks between its
  // stages; this pass re-runs them per check id for a readable scoreboard,
  // now including the post-process checks against a built FinalMapping.
  if (verifyEach) {
    const auto verifyMapping = core::buildFinalMapping(ddg, model, result);
    verify::VerifyInput verifyInput;
    verifyInput.ddg = &ddg;
    verifyInput.model = &model;
    verifyInput.result = &result;
    verifyInput.mapping = &verifyMapping;
    const auto& registry = verify::CheckRegistry::builtin();
    bool broken = false;
    for (const verify::Check& check : registry.checks()) {
      if (!verifyChecks.empty() &&
          std::find(verifyChecks.begin(), verifyChecks.end(), check.id) ==
              verifyChecks.end()) {
        continue;
      }
      const auto diagnostics = registry.run(verifyInput, {check.id});
      std::printf("verify %-16s %s\n", check.id.c_str(),
                  diagnostics.empty()
                      ? "clean"
                      : strCat(diagnostics.size(), " violation(s)").c_str());
      for (const auto& diagnostic : diagnostics) {
        std::fprintf(stderr, "  %s\n", diagnostic.toString().c_str());
      }
      broken = broken || !diagnostics.empty();
    }
    if (broken) {
      std::fprintf(stderr, "hcac: invariant verification failed\n");
      return 3;
    }
  }

  if (emitReconfig) {
    std::printf("\nreconfiguration program (%zu settings):\n%s",
                result.reconfig.settings.size(),
                result.reconfig.toString().c_str());
  }
  if (!dotTree.empty()) {
    std::ofstream out(dotTree);
    core::problemTreeToDot(result, out);
    std::printf("problem tree written to %s\n", dotTree.c_str());
  }
  if (!dotAssignment.empty()) {
    std::ofstream out(dotAssignment);
    core::assignmentToDot(ddg, model, result, out);
    std::printf("assignment written to %s\n", dotAssignment.c_str());
  }

  // --- schedule / simulate -------------------------------------------------
  if (!schedule && simulateIterations == 0) return 0;
  const auto mapping = core::buildFinalMapping(ddg, model, result);
  const auto sched = sched::moduloSchedule(mapping, model, mii.finalMii);
  if (!sched.ok) {
    std::printf("scheduling failed: %s\n", sched.failureReason.c_str());
    return 1;
  }
  std::printf("modulo schedule: II=%d, length %d, %d stages\n",
              sched.schedule.ii, sched.schedule.length,
              sched.schedule.stages());
  const auto pressure =
      sched::analyzeRegisterPressure(mapping, model, sched.schedule);
  std::printf("register pressure: %s\n", pressure.toString().c_str());
  const auto dma = sim::profileDma(mapping, model, sched.schedule);
  std::printf("dma: %s (%s)\n", dma.toString().c_str(),
              dma.withinCapacity(model.config().dmaSlots)
                  ? "within capacity"
                  : "OVERRUN");

  if (simulateIterations > 0) {
    if (kernel == nullptr) {
      std::printf("--simulate needs a built-in kernel (memory layout)\n");
      return 2;
    }
    const int iterations =
        std::min(simulateIterations, kernel->safeIterations);
    sim::SimConfig simConfig;
    simConfig.iterations = iterations;
    simConfig.memory = ddg::kernelInterpConfig(*kernel, iterations).memory;
    std::string why;
    const bool match = sim::matchesReference(ddg, mapping, model,
                                             sched.schedule, simConfig,
                                             &why);
    std::printf("simulation (%d iterations): %s%s\n", iterations,
                match ? "matches reference" : "MISMATCH — ",
                match ? "" : why.c_str());
    return match ? 0 : 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return runTool(argc, argv);
  } catch (const IoError& e) {
    std::fprintf(stderr, "hcac: i/o failure: %s\n", e.what());
    return 5;
  } catch (const InvalidArgumentError& e) {
    std::fprintf(stderr, "hcac: invalid input: %s\n", e.what());
    return 2;
  } catch (const Error& e) {
    std::fprintf(stderr, "hcac: internal error: %s\n", e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hcac: internal error: %s\n", e.what());
    return 3;
  }
}
