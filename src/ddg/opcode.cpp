#include "ddg/opcode.hpp"

#include "support/check.hpp"

namespace hca::ddg {

std::string_view opName(Op op) {
  switch (op) {
    case Op::kConst: return "const";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kMac: return "mac";
    case Op::kNeg: return "neg";
    case Op::kAbs: return "abs";
    case Op::kMin: return "min";
    case Op::kMax: return "max";
    case Op::kShl: return "shl";
    case Op::kShr: return "shr";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kCmpLt: return "cmplt";
    case Op::kSelect: return "select";
    case Op::kClip: return "clip";
    case Op::kLoad: return "load";
    case Op::kStore: return "store";
    case Op::kRecv: return "recv";
  }
  HCA_UNREACHABLE("unknown Op");
}

int opArity(Op op) {
  switch (op) {
    case Op::kConst: return 0;
    case Op::kNeg:
    case Op::kAbs:
    case Op::kClip:
    case Op::kLoad:
    case Op::kRecv: return 1;
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kMin:
    case Op::kMax:
    case Op::kShl:
    case Op::kShr:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kCmpLt:
    case Op::kStore: return 2;
    case Op::kMac:
    case Op::kSelect: return 3;
  }
  HCA_UNREACHABLE("unknown Op");
}

ResourceClass opResource(Op op) {
  switch (op) {
    case Op::kConst:
    case Op::kRecv: return ResourceClass::kNone;
    case Op::kLoad:
    case Op::kStore: return ResourceClass::kAg;
    default: return ResourceClass::kAlu;
  }
}

int LatencyModel::of(Op op) const {
  switch (op) {
    case Op::kConst: return 0;
    case Op::kMul: return mul;
    case Op::kMac: return mac;
    case Op::kLoad: return load;
    case Op::kStore: return store;
    case Op::kRecv: return recv;
    default: return alu;
  }
}

}  // namespace hca::ddg
