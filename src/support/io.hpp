#pragma once

#include <string>

#include "support/check.hpp"

/// Crash-safe file I/O for the durability layer.
///
/// Every artifact the tool chain persists (checkpoints, run reports, traces,
/// bench JSONs, batch summaries) goes through `atomicWriteFile`: the
/// contents are written to a temporary sibling, flushed to stable storage
/// with fsync, and renamed over the destination. A reader therefore always
/// observes either the complete old file or the complete new file — never a
/// torn or truncated write, even when the process is killed mid-write or
/// the machine loses power after the rename.
namespace hca {

/// A filesystem operation failed (open/write/fsync/rename). Distinct from
/// InvalidArgumentError so callers can map it to its own exit code — the
/// run itself may have succeeded even though persisting an artifact failed.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Atomically replaces `path` with `contents` (write-temp + fsync + rename
/// + directory fsync). The temporary lives in the destination directory so
/// the rename never crosses a filesystem. Throws IoError on any failure and
/// removes the temporary on the way out.
void atomicWriteFile(const std::string& path, const std::string& contents);

/// Reads the whole file into a string. Throws IoError when the file cannot
/// be opened or read (a *missing* file is also an IoError; use fileExists
/// to probe first when absence is an expected state).
[[nodiscard]] std::string readFile(const std::string& path);

[[nodiscard]] bool fileExists(const std::string& path);

/// Removes `path` if it exists; missing files are not an error. Throws
/// IoError when an existing file cannot be removed.
void removeFileIfExists(const std::string& path);

}  // namespace hca
