#include "analysis/rules.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "support/str.hpp"

namespace hca::analysis {
namespace {

[[nodiscard]] bool startsWith(const std::string& s, const std::string& p) {
  return s.rfind(p, 0) == 0;
}

[[nodiscard]] std::string makeKey(const std::string& rule,
                                  const std::string& file,
                                  const std::string& entity) {
  return strCat(rule, ":", file, ":", entity);
}

[[nodiscard]] Diagnostic makeDiagnostic(std::string rule, std::string file,
                                        int line, std::string entity,
                                        std::string message) {
  Diagnostic d;
  d.suppressionKey = makeKey(rule, file, entity);
  d.rule = std::move(rule);
  d.file = std::move(file);
  d.line = line;
  d.entity = std::move(entity);
  d.message = std::move(message);
  return d;
}

/// True when tokens[i] is `X` in a `std :: X` sequence.
[[nodiscard]] bool isStdQualified(const std::vector<Token>& tokens,
                                  std::size_t i) {
  return i >= 3 && tokens[i - 1].text == ":" && tokens[i - 2].text == ":" &&
         tokens[i - 3].text == "std";
}

[[nodiscard]] bool nextTokenIs(const std::vector<Token>& tokens,
                               std::size_t i, const std::string& text) {
  return i + 1 < tokens.size() && tokens[i + 1].text == text;
}

// ---------------------------------------------------------------------------
// determinism-clock

/// Files allowed to read real clocks / entropy. support/trace.* holds the
/// sanctioned wrappers, support/stats.hpp aggregates their samples, and
/// bench/ exists to measure wall time.
[[nodiscard]] bool clockAllowlisted(const std::string& file) {
  return file == "src/support/trace.hpp" || file == "src/support/trace.cpp" ||
         file == "src/support/stats.hpp" || startsWith(file, "bench/");
}

}  // namespace

std::vector<Diagnostic> runDeterminismClockRule(const SourceModel& model) {
  // Banned wherever the identifier appears (type use, alias, `::now()`),
  // qualified or not: the only legitimate homes are the allowlisted
  // wrappers, and comments/strings are never tokens.
  static const std::set<std::string> kBannedTypes = {
      "system_clock", "steady_clock", "high_resolution_clock",
      "random_device"};
  // Banned only as calls (identifier followed by '('): these are common
  // words ("time", "clock") that appear as member names elsewhere.
  static const std::set<std::string> kBannedCalls = {
      "rand",          "srand",        "time",  "clock",
      "timespec_get",  "gettimeofday", "clock_gettime"};

  std::vector<Diagnostic> out;
  for (const SourceFile& file : model.files()) {
    if (file.module.rank < 0 || clockAllowlisted(file.relPath)) continue;
    const std::vector<Token>& tokens = file.lexed.tokens;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      const Token& tok = tokens[i];
      if (tok.kind != TokenKind::kIdentifier) continue;
      const bool bannedType = kBannedTypes.count(tok.text) != 0;
      const bool bannedCall = kBannedCalls.count(tok.text) != 0 &&
                              nextTokenIs(tokens, i, "(") &&
                              // `foo.time(` / `foo->time(` are member calls
                              // on our own types, not libc.
                              (i == 0 || (tokens[i - 1].text != "." &&
                                          tokens[i - 1].text != ">"));
      if (!bannedType && !bannedCall) continue;
      out.push_back(makeDiagnostic(
          "determinism-clock", file.relPath, tok.line, tok.text,
          strCat("raw clock/entropy source '", tok.text,
                 "' outside support/trace.*; use hca::monotonicNow() / "
                 "wallClockNow() (support/trace.hpp) so results stay "
                 "deterministic")));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// determinism-ordered

namespace {

/// Result-affecting modules: iteration order here can change the algorithm's
/// answer, so iterating a hash container needs an ordered-ok justification.
[[nodiscard]] bool orderSensitiveModule(const std::string& module) {
  return module == "see" || module == "hca" || module == "mapper" ||
         module == "verify";
}

/// Skips a balanced `<...>` template argument list starting at the `<` at
/// tokens[i]; returns the index one past the closing `>`. Tolerates `>>`.
[[nodiscard]] std::size_t skipTemplateArgs(const std::vector<Token>& tokens,
                                           std::size_t i) {
  int depth = 0;
  for (; i < tokens.size(); ++i) {
    if (tokens[i].text == "<") ++depth;
    if (tokens[i].text == ">" && --depth == 0) return i + 1;
    if (tokens[i].text == ";") break;  // unbalanced — bail out
  }
  return i;
}

}  // namespace

std::vector<Diagnostic> runDeterminismOrderedRule(const SourceModel& model) {
  // Pass 1 (global): names declared with an unordered container type,
  //   std::unordered_map<K, V> name   /   unordered_set<T>& name
  // collected across the whole repo so a member declared in a header
  // (see/problem.hpp) is recognized when iterated in a .cpp elsewhere.
  std::set<std::string> unorderedNames;
  for (const SourceFile& file : model.files()) {
    if (file.module.rank < 0) continue;
    const std::vector<Token>& tokens = file.lexed.tokens;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (tokens[i].text != "unordered_map" &&
          tokens[i].text != "unordered_set" &&
          tokens[i].text != "unordered_multimap" &&
          tokens[i].text != "unordered_multiset") {
        continue;
      }
      std::size_t j = i + 1;
      if (j < tokens.size() && tokens[j].text == "<") {
        j = skipTemplateArgs(tokens, j);
      }
      while (j < tokens.size() &&
             (tokens[j].text == "&" || tokens[j].text == "*" ||
              tokens[j].text == "const")) {
        ++j;
      }
      if (j < tokens.size() && tokens[j].kind == TokenKind::kIdentifier) {
        unorderedNames.insert(tokens[j].text);
      }
    }
  }

  std::vector<Diagnostic> out;
  for (const SourceFile& file : model.files()) {
    if (!orderSensitiveModule(file.module.name)) continue;
    const std::vector<Token>& tokens = file.lexed.tokens;

    // Pass 2: range-for statements whose range expression names an
    // unordered container (declared variable or inline unordered type).
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (tokens[i].text != "for" || tokens[i + 1].text != "(") continue;
      // Find the top-level ':' of a range-for, stopping at ';' (classic for).
      int depth = 0;
      std::size_t colon = 0;
      std::size_t close = 0;
      for (std::size_t j = i + 1; j < tokens.size(); ++j) {
        const std::string& t = tokens[j].text;
        if (t == "(") ++depth;
        if (t == ")" && --depth == 0) {
          close = j;
          break;
        }
        if (depth == 1 && t == ";") break;
        if (depth == 1 && t == ":" && colon == 0 &&
            // exclude '::' qualifiers in the declaration
            tokens[j - 1].text != ":" &&
            (j + 1 >= tokens.size() || tokens[j + 1].text != ":")) {
          colon = j;
        }
      }
      if (colon == 0 || close == 0) continue;
      std::string offender;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (tokens[j].kind != TokenKind::kIdentifier) continue;
        if (unorderedNames.count(tokens[j].text) != 0 ||
            startsWith(tokens[j].text, "unordered_")) {
          offender = tokens[j].text;
          break;
        }
      }
      if (offender.empty()) continue;
      out.push_back(makeDiagnostic(
          "determinism-ordered", file.relPath, tokens[i].line, offender,
          strCat("iteration over unordered container '", offender, "' in ",
                 file.module.name,
                 "/ — order is hash-dependent; sort first or annotate "
                 "'// hca-lint: ordered-ok(<why order cannot matter>)'")));
    }

    // Pass 3: explicit iterator walks — name.begin() / name.cbegin() on a
    // known unordered container.
    for (std::size_t i = 0; i + 3 < tokens.size(); ++i) {
      if (unorderedNames.count(tokens[i].text) == 0) continue;
      if (tokens[i + 1].text != ".") continue;
      const std::string& member = tokens[i + 2].text;
      if ((member == "begin" || member == "cbegin") &&
          tokens[i + 3].text == "(") {
        out.push_back(makeDiagnostic(
            "determinism-ordered", file.relPath, tokens[i].line,
            tokens[i].text,
            strCat("iterator walk over unordered container '", tokens[i].text,
                   "' in ", file.module.name,
                   "/ — order is hash-dependent; sort first or annotate "
                   "'// hca-lint: ordered-ok(<why order cannot matter>)'")));
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// layering

std::vector<Diagnostic> runLayeringRule(const SourceModel& model) {
  std::vector<Diagnostic> out;

  // Back-edges: an include may only point at an equal or lower rank.
  for (const SourceFile& file : model.files()) {
    if (file.module.rank < 0) continue;
    for (const auto& [target, directive] : file.repoIncludes) {
      const ModuleInfo targetModule = classifyModule(target);
      if (targetModule.rank < 0) continue;
      if (targetModule.rank <= file.module.rank) continue;
      out.push_back(makeDiagnostic(
          "layering", file.relPath, directive.line, target,
          strCat("back-edge in module DAG: ", file.module.name, " (rank ",
                 file.module.rank, ") must not include ", targetModule.name,
                 " (rank ", targetModule.rank,
                 ") — the DAG is support -> graph -> ddg/machine -> "
                 "see/mapper/sched/baseline/sim -> hca -> verify -> "
                 "analysis -> tools/bench/tests")));
    }
  }

  // Include cycles, reported with the full file path. Iterative DFS with
  // colouring; each cycle is reported once, anchored at its lexicographically
  // smallest file so the diagnostic (and baseline key) is stable.
  std::map<std::string, int> colour;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  std::set<std::string> reportedAnchors;

  // Recursive lambda via explicit stack to avoid deep native recursion.
  struct Frame {
    const SourceFile* file;
    std::size_t next = 0;
  };
  for (const SourceFile& rootFile : model.files()) {
    if (colour[rootFile.relPath] != 0) continue;
    std::vector<Frame> frames;
    frames.push_back(Frame{&rootFile});
    colour[rootFile.relPath] = 1;
    stack.push_back(rootFile.relPath);
    while (!frames.empty()) {
      Frame& frame = frames.back();
      if (frame.next >= frame.file->repoIncludes.size()) {
        colour[frame.file->relPath] = 2;
        stack.pop_back();
        frames.pop_back();
        continue;
      }
      const auto& [target, directive] = frame.file->repoIncludes[frame.next++];
      const SourceFile* targetFile = model.find(target);
      if (targetFile == nullptr) continue;
      const int c = colour[target];
      if (c == 0) {
        colour[target] = 1;
        stack.push_back(target);
        frames.push_back(Frame{targetFile});
      } else if (c == 1) {
        // Grey hit: the cycle is stack[pos..end] + target.
        const auto pos = std::find(stack.begin(), stack.end(), target);
        std::vector<std::string> cycle(pos, stack.end());
        cycle.push_back(target);
        const std::string anchor =
            *std::min_element(cycle.begin(), cycle.end());
        if (reportedAnchors.insert(anchor).second) {
          out.push_back(makeDiagnostic(
              "layering", frame.file->relPath, directive.line, target,
              strCat("include cycle: ", strJoin(cycle, " -> "))));
        }
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// locking

std::vector<Diagnostic> runLockingRule(const SourceModel& model) {
  static const std::set<std::string> kRawLockTypes = {
      "mutex",
      "timed_mutex",
      "recursive_mutex",
      "recursive_timed_mutex",
      "shared_mutex",
      "shared_timed_mutex",
      "lock_guard",
      "unique_lock",
      "shared_lock",
      "scoped_lock",
      "condition_variable",
      "condition_variable_any",
  };

  std::vector<Diagnostic> out;
  for (const SourceFile& file : model.files()) {
    if (file.module.rank < 0) continue;
    const bool inSupport = startsWith(file.relPath, "src/support/");
    const std::vector<Token>& tokens = file.lexed.tokens;

    // Raw std lock primitives outside support/ — the wrappers in
    // support/mutex.hpp carry the clang thread-safety capabilities.
    if (!inSupport) {
      for (std::size_t i = 0; i < tokens.size(); ++i) {
        if (tokens[i].kind != TokenKind::kIdentifier) continue;
        if (kRawLockTypes.count(tokens[i].text) == 0) continue;
        if (!isStdQualified(tokens, i)) continue;
        out.push_back(makeDiagnostic(
            "locking", file.relPath, tokens[i].line,
            strCat("std::", tokens[i].text),
            strCat("raw std::", tokens[i].text,
                   " outside support/ — use hca::Mutex / hca::MutexLock "
                   "(support/mutex.hpp) so thread-safety analysis sees it")));
      }
    }

    // Mutex members must have at least one HCA_GUARDED_BY user in the same
    // file; an unguarded mutex guards nothing and is usually a mistake.
    if (!startsWith(file.relPath, "src/")) continue;
    std::set<std::string> guardedNames;
    for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
      if (tokens[i].text == "HCA_GUARDED_BY" && tokens[i + 1].text == "(" &&
          tokens[i + 2].kind == TokenKind::kIdentifier) {
        guardedNames.insert(tokens[i + 2].text);
      }
      // HCA_REQUIRES / HCA_EXCLUDES / HCA_ACQUIRE-style users also count:
      // the mutex name appears as the macro argument.
      if (startsWith(tokens[i].text, "HCA_") && tokens[i + 1].text == "(" &&
          tokens[i + 2].kind == TokenKind::kIdentifier) {
        guardedNames.insert(tokens[i + 2].text);
      }
    }
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (tokens[i].text != "Mutex") continue;
      // `Mutex name ;` / `Mutex name {` / `Mutex name =` declares a member
      // or variable. `MutexLock` and `Mutex` as a qualifier don't match.
      const Token& name = tokens[i + 1];
      if (name.kind != TokenKind::kIdentifier) continue;
      if (i + 2 >= tokens.size()) continue;
      const std::string& after = tokens[i + 2].text;
      if (after != ";" && after != "{" && after != "=") continue;
      if (guardedNames.count(name.text) != 0) continue;
      out.push_back(makeDiagnostic(
          "locking", file.relPath, name.line, name.text,
          strCat("mutex '", name.text,
                 "' has no HCA_GUARDED_BY user in this file — annotate the "
                 "state it protects, or it protects nothing")));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// exit-contract

namespace {

/// Files allowed to end the process: the signal/abort machinery itself and
/// tool mains mapping errors to exit codes.
[[nodiscard]] bool exitAllowlisted(const std::string& file) {
  return startsWith(file, "src/support/signals.") ||
         startsWith(file, "tools/");
}

}  // namespace

std::vector<Diagnostic> runExitContractRule(const SourceModel& model) {
  static const std::set<std::string> kExitCalls = {"exit", "_exit", "_Exit",
                                                   "abort", "quick_exit"};
  std::vector<Diagnostic> out;
  for (const SourceFile& file : model.files()) {
    if (file.module.rank < 0 || exitAllowlisted(file.relPath)) continue;
    const std::vector<Token>& tokens = file.lexed.tokens;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (tokens[i].kind != TokenKind::kIdentifier) continue;
      const bool exitCall =
          kExitCalls.count(tokens[i].text) != 0 &&
          nextTokenIs(tokens, i, "(") &&
          (i == 0 ||
           (tokens[i - 1].text != "." && tokens[i - 1].text != ">" &&
            // qualified: only the std:: forms are the libc functions
            (tokens[i - 1].text != ":" || isStdQualified(tokens, i))));
      const bool terminateCall =
          tokens[i].text == "terminate" && isStdQualified(tokens, i) &&
          nextTokenIs(tokens, i, "(");
      if (!exitCall && !terminateCall) continue;
      out.push_back(makeDiagnostic(
          "exit-contract", file.relPath, tokens[i].line, tokens[i].text,
          strCat("'", tokens[i].text,
                 "' ends the process from library code — throw hca::Error "
                 "and let the tool main map it to an exit code "
                 "(allowed only in support/signals.* and tools/)")));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------

std::string suppressionKeyForRule(const std::string& rule) {
  if (rule == "determinism-clock") return "clock-ok";
  if (rule == "determinism-ordered") return "ordered-ok";
  if (rule == "layering") return "layer-ok";
  if (rule == "locking") return "mutex-ok";
  if (rule == "exit-contract") return "exit-ok";
  return {};
}

std::vector<Diagnostic> applyInlineSuppressions(
    const SourceModel& model, std::vector<Diagnostic> diagnostics) {
  std::vector<Diagnostic> kept;
  kept.reserve(diagnostics.size());
  for (Diagnostic& d : diagnostics) {
    const SourceFile* file = model.find(d.file);
    bool suppressed = false;
    if (file != nullptr) {
      const std::string key = suppressionKeyForRule(d.rule);
      for (const SuppressionMarker& marker : file->lexed.suppressions) {
        if (marker.key == key &&
            (marker.line == d.line || marker.line == d.line - 1)) {
          suppressed = true;
          break;
        }
      }
    }
    if (!suppressed) kept.push_back(std::move(d));
  }
  std::sort(kept.begin(), kept.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return kept;
}

std::vector<Diagnostic> runAllRules(const SourceModel& model) {
  std::vector<Diagnostic> all = runDeterminismClockRule(model);
  for (auto* runner :
       {&runDeterminismOrderedRule, &runLayeringRule, &runLockingRule,
        &runExitContractRule}) {
    std::vector<Diagnostic> part = (*runner)(model);
    all.insert(all.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return applyInlineSuppressions(model, std::move(all));
}

}  // namespace hca::analysis
