#pragma once

#include <condition_variable>
#include <mutex>

#include "support/thread_annotations.hpp"

/// Annotated mutex wrappers for clang's `-Wthread-safety` analysis.
///
/// The analysis only reasons about capability-annotated types; `std::mutex`
/// and `std::lock_guard` are opaque to it. These zero-overhead wrappers
/// give every lock-protected structure in the support layer a capability
/// the compiler can track, so a forgotten lock around a HCA_GUARDED_BY
/// member is a *compile-time* error instead of a ThreadSanitizer finding.
///
/// Condition variables: use `hca::CondVar` (below) with a `MutexLock`
/// (it satisfies BasicLockable). Prefer explicit predicate
/// loops over the predicate-lambda overloads — the analysis cannot see
/// that a lambda body runs under the caller's lock, so guarded members
/// read inside a predicate lambda would need an escape hatch:
///
///   MutexLock lock(mutex_);
///   while (!ready_) cv_.wait(lock);   // ready_ is HCA_GUARDED_BY(mutex_)
namespace hca {

class HCA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HCA_ACQUIRE() { mutex_.lock(); }
  void unlock() HCA_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() HCA_TRY_ACQUIRE(true) {
    return mutex_.try_lock();
  }

 private:
  std::mutex mutex_;
};

/// RAII lock over a `Mutex` (the annotated `std::lock_guard`). Also a
/// BasicLockable so `std::condition_variable_any::wait` can release and
/// re-acquire it; the analysis treats the capability as held across the
/// wait, which is exactly the caller-visible contract.
class HCA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) HCA_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() HCA_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// BasicLockable surface for condition_variable_any. Only the wait
  /// implementation calls these; user code relies on the RAII contract.
  void lock() HCA_ACQUIRE() { mutex_.lock(); }
  void unlock() HCA_RELEASE() { mutex_.unlock(); }

 private:
  Mutex& mutex_;
};

/// The condition variable that pairs with Mutex/MutexLock. An alias rather
/// than a wrapper: condition_variable_any accepts any BasicLockable, and
/// the thread-safety analysis keys off the lock it waits on, not the cv
/// itself. Outside support/ this alias is the only sanctioned condvar —
/// hca-lint's locking rule flags the raw std name.
using CondVar = std::condition_variable_any;

}  // namespace hca
