#include "ddg/builder.hpp"

#include "support/check.hpp"

namespace hca::ddg {

DdgBuilder::Value DdgBuilder::carry(std::int64_t init, std::string name) {
  SlotInfo slot;
  slot.init = init;
  slot.name = std::move(name);
  slots_.push_back(std::move(slot));
  return Value(static_cast<std::int32_t>(slots_.size()) - 1, /*isSlot=*/true);
}

void DdgBuilder::close(Value slotValue, Value producer,
                       std::int32_t distance) {
  HCA_REQUIRE(slotValue.isSlot_, "close() expects a carry slot");
  HCA_REQUIRE(distance >= 1, "carried distance must be >= 1");
  HCA_REQUIRE(!producer.isSlot_ || producer.index_ != slotValue.index_,
              "cannot close a slot with itself");
  auto& slot = slots_[static_cast<std::size_t>(slotValue.index_)];
  HCA_REQUIRE(!slot.closed, "carry slot closed twice");
  if (producer.isSlot_) {
    // Closing with another slot: that slot must already be closed so we can
    // forward to its producer (chained carries compose distances).
    const auto& other = slots_[static_cast<std::size_t>(producer.index_)];
    HCA_REQUIRE(other.closed, "closing with a still-open carry slot");
    slot.boundTo = other.boundTo;
    slot.distance = distance + other.distance;
  } else {
    slot.boundTo = producer.index_;
    slot.distance = distance;
  }
  slot.closed = true;
}

DdgBuilder::PendingOperand DdgBuilder::resolve(Value v,
                                               std::int32_t extraDistance,
                                               std::int64_t init) {
  PendingOperand op;
  op.distance = extraDistance;
  op.init = init;
  if (v.isSlot_) {
    op.slot = v.index_;
  } else {
    HCA_REQUIRE(v.index_ >= 0, "use of an uninitialized Value");
    op.nodeSrc = v.index_;
  }
  return op;
}

DdgBuilder::Value DdgBuilder::emitInternal(
    Op op, std::vector<PendingOperand> operands, std::int64_t imm0,
    std::int64_t imm1, std::string name) {
  HCA_REQUIRE(!finished_, "builder already finished");
  DdgNode node;
  node.op = op;
  node.imm0 = imm0;
  node.imm1 = imm1;
  node.name = std::move(name);
  // Operands are patched in finish(); keep placeholders for arity checking.
  node.operands.resize(operands.size());
  const DdgNodeId id = ddg_.addNode(std::move(node));
  pending_.push_back(std::move(operands));
  return Value(id.value(), /*isSlot=*/false);
}

DdgBuilder::Value DdgBuilder::emit(Op op, std::vector<Value> operands,
                                   std::int64_t imm0, std::int64_t imm1,
                                   std::string name) {
  std::vector<PendingOperand> pending;
  pending.reserve(operands.size());
  for (Value v : operands) pending.push_back(resolve(v, 0, 0));
  return emitInternal(op, std::move(pending), imm0, imm1, std::move(name));
}

DdgBuilder::Value DdgBuilder::at(Value producer, std::int32_t distance,
                                 std::int64_t init) {
  HCA_REQUIRE(distance >= 0, "at(): negative distance");
  if (distance == 0) return producer;
  // A carried read of an existing producer is an immediately-closed slot.
  Value slot = carry(init);
  close(slot, producer, distance);
  return slot;
}

Ddg DdgBuilder::finish() {
  HCA_REQUIRE(!finished_, "builder finished twice");
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    HCA_REQUIRE(slots_[s].closed, "carry slot #" << s << " ('"
                                                 << slots_[s].name
                                                 << "') never closed");
  }
  for (std::int32_t v = 0; v < ddg_.numNodes(); ++v) {
    auto& node = ddg_.node(DdgNodeId(v));
    const auto& pend = pending_[static_cast<std::size_t>(v)];
    for (std::size_t i = 0; i < pend.size(); ++i) {
      const PendingOperand& p = pend[i];
      Operand resolved;
      if (p.slot >= 0) {
        const auto& slot = slots_[static_cast<std::size_t>(p.slot)];
        resolved.src = DdgNodeId(slot.boundTo);
        resolved.distance = slot.distance + p.distance;
        resolved.init = slot.init;
      } else {
        resolved.src = DdgNodeId(p.nodeSrc);
        resolved.distance = p.distance;
        resolved.init = p.init;
      }
      node.operands[i] = resolved;
    }
  }
  finished_ = true;
  ddg_.validate();
  return std::move(ddg_);
}

DdgNodeId DdgBuilder::idOf(Value v) const {
  HCA_REQUIRE(!v.isSlot_, "idOf() on a carry slot");
  return DdgNodeId(v.index_);
}

// --- thin wrappers ---------------------------------------------------------

DdgBuilder::Value DdgBuilder::cst(std::int64_t literal, std::string name) {
  return emit(Op::kConst, {}, literal, 0, std::move(name));
}
DdgBuilder::Value DdgBuilder::add(Value a, Value b, std::string name) {
  return emit(Op::kAdd, {a, b}, 0, 0, std::move(name));
}
DdgBuilder::Value DdgBuilder::sub(Value a, Value b, std::string name) {
  return emit(Op::kSub, {a, b}, 0, 0, std::move(name));
}
DdgBuilder::Value DdgBuilder::mul(Value a, Value b, std::string name) {
  return emit(Op::kMul, {a, b}, 0, 0, std::move(name));
}
DdgBuilder::Value DdgBuilder::mac(Value acc, Value a, Value b,
                                  std::string name) {
  return emit(Op::kMac, {acc, a, b}, 0, 0, std::move(name));
}
DdgBuilder::Value DdgBuilder::neg(Value a, std::string name) {
  return emit(Op::kNeg, {a}, 0, 0, std::move(name));
}
DdgBuilder::Value DdgBuilder::abs(Value a, std::string name) {
  return emit(Op::kAbs, {a}, 0, 0, std::move(name));
}
DdgBuilder::Value DdgBuilder::min(Value a, Value b, std::string name) {
  return emit(Op::kMin, {a, b}, 0, 0, std::move(name));
}
DdgBuilder::Value DdgBuilder::max(Value a, Value b, std::string name) {
  return emit(Op::kMax, {a, b}, 0, 0, std::move(name));
}
DdgBuilder::Value DdgBuilder::shl(Value a, Value b, std::string name) {
  return emit(Op::kShl, {a, b}, 0, 0, std::move(name));
}
DdgBuilder::Value DdgBuilder::shr(Value a, Value b, std::string name) {
  return emit(Op::kShr, {a, b}, 0, 0, std::move(name));
}
DdgBuilder::Value DdgBuilder::and_(Value a, Value b, std::string name) {
  return emit(Op::kAnd, {a, b}, 0, 0, std::move(name));
}
DdgBuilder::Value DdgBuilder::or_(Value a, Value b, std::string name) {
  return emit(Op::kOr, {a, b}, 0, 0, std::move(name));
}
DdgBuilder::Value DdgBuilder::xor_(Value a, Value b, std::string name) {
  return emit(Op::kXor, {a, b}, 0, 0, std::move(name));
}
DdgBuilder::Value DdgBuilder::cmplt(Value a, Value b, std::string name) {
  return emit(Op::kCmpLt, {a, b}, 0, 0, std::move(name));
}
DdgBuilder::Value DdgBuilder::select(Value c, Value a, Value b,
                                     std::string name) {
  return emit(Op::kSelect, {c, a, b}, 0, 0, std::move(name));
}
DdgBuilder::Value DdgBuilder::clip(Value a, std::int64_t lo, std::int64_t hi,
                                   std::string name) {
  return emit(Op::kClip, {a}, lo, hi, std::move(name));
}
DdgBuilder::Value DdgBuilder::load(Value addr, std::int64_t offset,
                                   std::string name) {
  return emit(Op::kLoad, {addr}, offset, 0, std::move(name));
}
void DdgBuilder::store(Value addr, Value value, std::int64_t offset,
                       std::string name) {
  emit(Op::kStore, {addr, value}, offset, 0, std::move(name));
}

}  // namespace hca::ddg
