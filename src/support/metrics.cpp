#include "support/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <utility>
#include <vector>

#include "support/json.hpp"
#include "support/str.hpp"

namespace hca {

namespace {

/// Bucket index of `x`: 0 for x < 1, otherwise 1 + floor(log2(x)), capped.
int bucketOf(double x) {
  if (!(x >= 1.0)) return 0;  // also catches NaN
  const int exp = std::ilogb(x);
  return std::min(Histogram::kBuckets - 1, 1 + exp);
}

/// Upper edge of bucket `i` (2^i; bucket 0 ends at 1).
double bucketUpper(int i) { return std::ldexp(1.0, i); }

/// Splits a registry name into (family, level label): "see.expansions.L1"
/// -> ("see_expansions", "1"); names without a .L<n> suffix get an empty
/// label. Characters outside [a-zA-Z0-9_:] become '_'.
std::pair<std::string, std::string> openMetricsFamily(
    const std::string& name) {
  std::string base = name;
  std::string level;
  const std::size_t dot = name.rfind(".L");
  if (dot != std::string::npos && dot + 2 < name.size() &&
      name.find_first_not_of("0123456789", dot + 2) == std::string::npos) {
    base = name.substr(0, dot);
    level = name.substr(dot + 2);
  }
  for (char& c : base) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return {base, level};
}

std::string labelSuffix(const std::string& level) {
  return level.empty() ? "" : "{level=\"" + level + "\"}";
}

/// OpenMetrics number formatting: finite shortest-round-trip doubles; the
/// exposition format has no NaN/inf sample values we need here (empty
/// histograms export count=0 and omit quantiles).
void writeOmDouble(std::ostream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

}  // namespace

void Histogram::add(double x) {
  stats_.add(x);
  ++buckets_[static_cast<std::size_t>(bucketOf(x))];
}

void Histogram::merge(const Histogram& other) {
  stats_.merge(other.stats_);
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[static_cast<std::size_t>(i)] +=
        other.buckets_[static_cast<std::size_t>(i)];
  }
}

double Histogram::quantile(double q) const {
  if (stats_.count() == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(stats_.count());
  std::int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)];
    if (static_cast<double>(seen) >= rank) {
      // The quantile falls in this bucket; report its upper edge clamped
      // to the exact observed range.
      return std::clamp(bucketUpper(i), stats_.min(), stats_.max());
    }
  }
  return stats_.max();
}

std::int64_t& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

void MetricsRegistry::add(const std::string& name, std::int64_t delta) {
  counters_[name] += delta;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return histograms_[name];
}

void MetricsRegistry::observe(const std::string& name, double value) {
  histograms_[name].add(value);
}

std::int64_t MetricsRegistry::counterValue(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

const Histogram* MetricsRegistry::findHistogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, histogram] : other.histograms_) {
    histograms_[name].merge(histogram);
  }
}

void MetricsRegistry::writeJson(JsonWriter& json) const {
  json.beginObject();
  json.key("counters").beginObject();
  for (const auto& [name, value] : counters_) {
    json.key(name).value(value);
  }
  json.endObject();
  json.key("histograms").beginObject();
  for (const auto& [name, histogram] : histograms_) {
    const RunningStats& s = histogram.stats();
    json.key(name).beginObject();
    json.key("count").value(s.count());
    json.key("sum").value(s.sum());
    json.key("mean").value(s.mean());
    json.key("stddev").value(s.stddev());
    json.key("min").value(s.count() > 0 ? s.min() : 0.0);
    json.key("max").value(s.count() > 0 ? s.max() : 0.0);
    json.key("p50").value(histogram.quantile(0.5));
    json.key("p90").value(histogram.quantile(0.9));
    json.key("p99").value(histogram.quantile(0.99));
    json.endObject();
  }
  json.endObject();
  json.endObject();
}

void MetricsRegistry::writeOpenMetrics(std::ostream& os,
                                       const std::string& prefix) const {
  // Group per-level series under one family: OpenMetrics requires all
  // samples of a family to be contiguous under a single # TYPE line.
  std::map<std::string, std::vector<std::pair<std::string, std::int64_t>>>
      counterFamilies;
  for (const auto& [name, value] : counters_) {
    const auto [base, level] = openMetricsFamily(name);
    counterFamilies[prefix + "_" + base].emplace_back(level, value);
  }
  for (const auto& [family, samples] : counterFamilies) {
    os << "# TYPE " << family << " counter\n";
    for (const auto& [level, value] : samples) {
      os << family << "_total" << labelSuffix(level) << " " << value << "\n";
    }
  }

  std::map<std::string, std::vector<std::pair<std::string, const Histogram*>>>
      histogramFamilies;
  for (const auto& [name, histogram] : histograms_) {
    const auto [base, level] = openMetricsFamily(name);
    histogramFamilies[prefix + "_" + base].emplace_back(level, &histogram);
  }
  for (const auto& [family, samples] : histogramFamilies) {
    os << "# TYPE " << family << " summary\n";
    for (const auto& [level, histogram] : samples) {
      const RunningStats& s = histogram->stats();
      os << family << "_count" << labelSuffix(level) << " " << s.count()
         << "\n";
      os << family << "_sum" << labelSuffix(level) << " ";
      writeOmDouble(os, s.count() > 0 ? s.sum() : 0.0);
      os << "\n";
      if (s.count() == 0) continue;  // quantiles of nothing are NaN
      for (const double q : {0.5, 0.9, 0.99}) {
        os << family;
        os << (level.empty() ? strCat("{quantile=\"", q, "\"}")
                             : strCat("{level=\"", level, "\",quantile=\"", q,
                                      "\"}"));
        os << " ";
        writeOmDouble(os, histogram->quantile(q));
        os << "\n";
      }
    }
  }
  os << "# EOF\n";
}

void MetricsRegistry::printTable(std::ostream& os) const {
  std::size_t width = 8;
  for (const auto& [name, value] : counters_) {
    (void)value;
    width = std::max(width, name.size());
  }
  for (const auto& [name, histogram] : histograms_) {
    (void)histogram;
    width = std::max(width, name.size());
  }
  char buf[256];
  if (!counters_.empty()) {
    os << "counters:\n";
    for (const auto& [name, value] : counters_) {
      std::snprintf(buf, sizeof(buf), "  %-*s %12lld\n",
                    static_cast<int>(width), name.c_str(),
                    static_cast<long long>(value));
      os << buf;
    }
  }
  if (!histograms_.empty()) {
    std::snprintf(buf, sizeof(buf), "histograms: %-*s %8s %10s %10s %10s %10s %10s\n",
                  static_cast<int>(width) - 1, "", "count", "mean", "p50",
                  "p90", "p99", "max");
    os << buf;
    for (const auto& [name, histogram] : histograms_) {
      const RunningStats& s = histogram.stats();
      std::snprintf(buf, sizeof(buf),
                    "  %-*s %8lld %10.1f %10.1f %10.1f %10.1f %10.1f\n",
                    static_cast<int>(width), name.c_str(),
                    static_cast<long long>(s.count()), s.mean(),
                    histogram.quantile(0.5), histogram.quantile(0.9),
                    histogram.quantile(0.99), s.count() > 0 ? s.max() : 0.0);
      os << buf;
    }
  }
}

}  // namespace hca
