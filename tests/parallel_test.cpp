#include <gtest/gtest.h>

#include <atomic>

#include "ddg/builder.hpp"
#include "ddg/kernels.hpp"
#include "hca/driver.hpp"
#include "hca/mii.hpp"
#include "hca/subproblem_cache.hpp"
#include "see/engine.hpp"
#include "support/thread_pool.hpp"

/// Portfolio-search and memoization coverage: the parallel outer sweep must
/// be bit-identical to the serial one (it is the same search, just
/// explored concurrently), and a sub-problem cache hit must byte-match a
/// fresh solve. This file carries the ctest `tsan` label and is the primary
/// ThreadSanitizer target (build with -DHCA_SANITIZE=thread).
namespace hca::core {
namespace {

machine::DspFabricModel paperFabric(int n = 8, int m = 8, int k = 8) {
  machine::DspFabricConfig config;
  config.n = n;
  config.m = m;
  config.k = k;
  return machine::DspFabricModel(config);
}

/// The determinism contract of the portfolio search: same verdict, same
/// achieved target II, same placement, same reconfiguration stream.
void expectSameOutcome(const HcaResult& a, const HcaResult& b) {
  ASSERT_EQ(a.legal, b.legal) << a.failureReason << " vs " << b.failureReason;
  EXPECT_EQ(a.stats.achievedTargetIi, b.stats.achievedTargetIi);
  ASSERT_EQ(a.assignment.size(), b.assignment.size());
  for (std::size_t i = 0; i < a.assignment.size(); ++i) {
    ASSERT_EQ(a.assignment[i], b.assignment[i]) << "assignment diverges at " << i;
  }
  ASSERT_EQ(a.relays.size(), b.relays.size());
  for (std::size_t i = 0; i < a.relays.size(); ++i) {
    EXPECT_EQ(a.relays[i].value, b.relays[i].value);
    EXPECT_EQ(a.relays[i].cn, b.relays[i].cn);
  }
  ASSERT_EQ(a.reconfig.settings.size(), b.reconfig.settings.size());
  for (std::size_t i = 0; i < a.reconfig.settings.size(); ++i) {
    EXPECT_EQ(a.reconfig.settings[i], b.reconfig.settings[i]);
  }
}

// --- thread pool / cancellation primitives ----------------------------------

TEST(ThreadPoolTest, RunsEveryTaskAndIsReusable) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(done.load(), 100);
  for (int i = 0; i < 50; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(done.load(), 150);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPoolTest, ResolveThreads) {
  EXPECT_EQ(ThreadPool::resolveThreads(1), 1);
  EXPECT_EQ(ThreadPool::resolveThreads(6), 6);
  EXPECT_GE(ThreadPool::resolveThreads(0), 1);  // hardware_concurrency
}

TEST(CancellationTokenTest, CancellationIsSticky) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
}

TEST(CancellationTokenTest, SeeUnwindsWhenCancelled) {
  // A trivially solvable problem: one huge cluster, no boundary. The
  // uncancelled run must be legal; a pre-cancelled token must unwind with
  // the dedicated failure reason instead.
  ddg::DdgBuilder b;
  const auto x = b.load(b.cst(0), 0);
  b.store(b.cst(1), b.add(x, b.cst(3)));
  const auto ddg = b.finish();

  machine::PatternGraph pg;
  pg.addCluster(machine::ResourceTable(16, 16), "c0");
  see::SeeProblem problem;
  problem.ddg = &ddg;
  for (std::int32_t v = 0; v < ddg.numNodes(); ++v) {
    if (ddg::isInstruction(ddg.node(DdgNodeId(v)).op)) {
      problem.workingSet.emplace_back(v);
    }
  }
  problem.pg = &pg;

  const see::SpaceExplorationEngine engine;
  EXPECT_TRUE(engine.run(problem).legal);

  CancellationToken cancelled;
  cancelled.cancel();
  const auto aborted = engine.run(problem, &cancelled);
  EXPECT_FALSE(aborted.legal);
  EXPECT_EQ(aborted.failureReason, "cancelled");
}

// --- sub-problem cache -------------------------------------------------------

TEST(SubproblemCacheTest, InsertLookupRoundTrip) {
  SubproblemCache cache(4);
  EXPECT_EQ(cache.lookup("absent"), nullptr);

  see::SeeResult result;
  result.legal = true;
  result.stats.statesExplored = 42;
  result.failureReason = "none";
  const auto stored = cache.insert("key", std::move(result));
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(cache.entries(), 1);

  const auto found = cache.lookup("key");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found.get(), stored.get());  // same object, not a copy
  EXPECT_TRUE(found->legal);
  EXPECT_EQ(found->stats.statesExplored, 42);

  // First writer wins: a second insert under the same key is dropped.
  see::SeeResult other;
  other.stats.statesExplored = 7;
  const auto kept = cache.insert("key", std::move(other));
  EXPECT_EQ(kept.get(), stored.get());
  EXPECT_EQ(cache.entries(), 1);
}

TEST(SubproblemCacheTest, CachedResultsByteMatchFreshSolves) {
  // The cache must be invisible in everything but wall-clock: a run with
  // memoization produces the same placement, the same reconfiguration
  // stream, and — because a hit replays the recorded SEE statistics — the
  // same aggregate search counters as a run without it.
  auto kernels = ddg::table1Kernels();
  const auto& k = kernels[2];  // mpeg2inter
  const auto model = paperFabric();

  HcaOptions uncached;
  uncached.enableSubproblemCache = false;
  HcaOptions cached;
  cached.enableSubproblemCache = true;

  const auto fresh = HcaDriver(model, uncached).run(k.ddg);
  const auto replayed = HcaDriver(model, cached).run(k.ddg);
  ASSERT_TRUE(fresh.legal) << fresh.failureReason;
  expectSameOutcome(fresh, replayed);

  EXPECT_EQ(fresh.stats.cacheHits, 0);
  EXPECT_EQ(fresh.stats.cacheMisses, 0);
  EXPECT_GT(replayed.stats.cacheHits, 0) << "backtracking re-solves should hit";
  EXPECT_EQ(replayed.stats.cacheHits + replayed.stats.cacheMisses,
            static_cast<std::int64_t>(replayed.stats.problemsSolved));

  // Byte-identical search effort (see records.hpp: hits replay stats).
  EXPECT_EQ(fresh.stats.problemsSolved, replayed.stats.problemsSolved);
  EXPECT_EQ(fresh.stats.statesExplored, replayed.stats.statesExplored);
  EXPECT_EQ(fresh.stats.candidatesEvaluated, replayed.stats.candidatesEvaluated);
  EXPECT_EQ(fresh.stats.routeInvocations, replayed.stats.routeInvocations);
  EXPECT_EQ(fresh.stats.backtrackAttempts, replayed.stats.backtrackAttempts);
  EXPECT_EQ(fresh.stats.outerAttempts, replayed.stats.outerAttempts);
  EXPECT_EQ(fresh.stats.maxWirePressure, replayed.stats.maxWirePressure);
}

// --- portfolio determinism (serial vs parallel) ------------------------------

class PortfolioKernelTest : public ::testing::TestWithParam<int> {};

TEST_P(PortfolioKernelTest, ParallelMatchesSerialSweep) {
  auto kernels = ddg::table1Kernels();
  auto k = std::move(kernels[static_cast<std::size_t>(GetParam())]);
  const auto model = paperFabric();

  HcaOptions serial;
  HcaOptions parallel;
  parallel.numThreads = 4;
  if (GetParam() == 3) {
    // h264deblocking defeats the direct search at N=M=K=8 (see hca_test);
    // go straight to the degraded fallback, whose own sweep (slack >= 6)
    // exercises the parallel portfolio on both failing and legal attempts.
    serial.targetIiSlack = parallel.targetIiSlack = 0;
    serial.searchProfiles = parallel.searchProfiles = 1;
  } else {
    // A small sweep is enough: the point is serial/parallel equivalence,
    // not search quality.
    serial.targetIiSlack = parallel.targetIiSlack = 1;
    serial.searchProfiles = parallel.searchProfiles = 2;
  }

  const auto serialResult = HcaDriver(model, serial).run(k.ddg);
  const auto parallelResult = HcaDriver(model, parallel).run(k.ddg);
  ASSERT_TRUE(serialResult.legal) << serialResult.failureReason;
  expectSameOutcome(serialResult, parallelResult);
}

std::string kernelName(const ::testing::TestParamInfo<int>& info) {
  static const char* kNames[] = {"fir2dim", "idcthor", "mpeg2inter",
                                 "h264deblocking"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllKernels, PortfolioKernelTest,
                         ::testing::Range(0, 4), kernelName);

TEST(PortfolioTest, ZeroThreadsMeansHardwareConcurrency) {
  auto kernels = ddg::table1Kernels();
  const auto& k = kernels[0];  // fir2dim
  const auto model = paperFabric();
  HcaOptions hw;
  hw.numThreads = 0;
  hw.targetIiSlack = 1;
  hw.searchProfiles = 2;
  const auto result = HcaDriver(model, hw).run(k.ddg);
  ASSERT_TRUE(result.legal) << result.failureReason;

  HcaOptions one = hw;
  one.numThreads = 1;
  expectSameOutcome(HcaDriver(model, one).run(k.ddg), result);
}

TEST(PortfolioTest, ParallelSweepSharesOneCache) {
  auto kernels = ddg::table1Kernels();
  const auto& k = kernels[2];  // mpeg2inter
  const auto model = paperFabric();
  HcaOptions options;
  options.numThreads = 4;
  options.targetIiSlack = 1;
  options.searchProfiles = 2;
  const auto result = HcaDriver(model, options).run(k.ddg);
  ASSERT_TRUE(result.legal) << result.failureReason;
  // Concurrent attempts solve overlapping sub-problems; at least some must
  // resolve as cache hits across attempt boundaries.
  EXPECT_GT(result.stats.cacheHits, 0);
}

// --- aggregate stats semantics -----------------------------------------------

TEST(StatsSemanticsTest, FailedSweepReportsTrueAggregates) {
  // h264deblocking fails the direct search at N=M=K=8; with the fallback
  // disabled the run must report every attempt of the sweep and an
  // achievedTargetIi of 0 ("none"), not the last attempt's target.
  auto kernels = ddg::table1Kernels();
  auto k = std::move(kernels[3]);
  const auto model = paperFabric();
  HcaOptions options;
  options.targetIiSlack = 0;
  options.searchProfiles = 2;
  options.degradedFallback = false;

  const auto serialResult = HcaDriver(model, options).run(k.ddg);
  ASSERT_FALSE(serialResult.legal);
  EXPECT_EQ(serialResult.stats.outerAttempts, 2);
  EXPECT_EQ(serialResult.stats.achievedTargetIi, 0);
  EXPECT_FALSE(serialResult.failureReason.empty());

  // The parallel sweep of a fully failing portfolio runs every attempt to
  // completion (nothing can cancel without a winner) and must agree.
  HcaOptions parallel = options;
  parallel.numThreads = 2;
  const auto parallelResult = HcaDriver(model, parallel).run(k.ddg);
  ASSERT_FALSE(parallelResult.legal);
  EXPECT_EQ(parallelResult.stats.outerAttempts, 2);
  EXPECT_EQ(parallelResult.stats.achievedTargetIi, 0);
  EXPECT_EQ(parallelResult.stats.attemptsCancelled, 0);
  EXPECT_EQ(parallelResult.failureReason, serialResult.failureReason);
  expectSameOutcome(serialResult, parallelResult);
}

TEST(StatsSemanticsTest, SuccessfulSweepCountsAttemptsAcrossTheRun) {
  auto kernels = ddg::table1Kernels();
  const auto& k = kernels[0];  // fir2dim
  const auto model = paperFabric();
  const auto result = HcaDriver(model).run(k.ddg);
  ASSERT_TRUE(result.legal);
  // Serial sweep: outerAttempts is the 1-based index of the winning
  // attempt, and the winner's target matches its position in the sweep
  // (attempts are ordered by target first, then profile).
  EXPECT_GE(result.stats.outerAttempts, 1);
  const auto mii = computeMii(k.ddg, model, result);
  const int winnerTargetOffset =
      (result.stats.outerAttempts - 1) / HcaOptions().searchProfiles;
  EXPECT_EQ(result.stats.achievedTargetIi, mii.iniMii + winnerTargetOffset);
  EXPECT_EQ(result.stats.attemptsCancelled, 0);
}

}  // namespace
}  // namespace hca::core
