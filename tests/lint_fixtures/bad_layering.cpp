// Fixture: flagged by layering and no other rule. The test maps this file
// to src/support/bad_layering.cpp — support (rank 0) must not include hca
// (rank 4), so the include below is a back-edge in the module DAG.
#include "hca/layering_stub.hpp"

namespace hca {

[[nodiscard]] int fixtureUsesUpperLayer() { return core::fixtureStubValue(); }

}  // namespace hca
