#include "support/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>

#include "support/trace.hpp"

namespace hca {

namespace {

/// Small, sequential per-process thread ids: stable within a run and far
/// easier to correlate across a fault sweep's interleaved lines than the
/// opaque pthread handles std::this_thread::get_id() prints.
int threadLogId() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::optional<LogLevel> parseLogLevel(std::string text) {
  for (char& c : text) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (text == "trace" || text == "0") return LogLevel::kTrace;
  if (text == "debug" || text == "1") return LogLevel::kDebug;
  if (text == "info" || text == "2") return LogLevel::kInfo;
  if (text == "warn" || text == "warning" || text == "3") return LogLevel::kWarn;
  if (text == "off" || text == "none" || text == "4") return LogLevel::kOff;
  return std::nullopt;
}

}  // namespace

std::optional<LogLevel> logLevelFromString(const std::string& text) {
  return parseLogLevel(text);
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  // HCA_LOG_LEVEL overrides the compiled-in default so a multi-threaded
  // fault sweep can be made chatty (or silent) without recompiling.
  if (const char* env = std::getenv("HCA_LOG_LEVEL")) {
    if (const auto level = parseLogLevel(env)) level_ = *level;
  }
}

std::string Logger::formatLine(LogLevel level, const std::string& message) {
  static const char* const kNames[] = {"TRACE", "DEBUG", "INFO", "WARN"};
  const WallClockSample now = wallClockNow();
  std::tm tm{};
  gmtime_r(&now.seconds, &tm);
  char stamp[40];
  std::snprintf(stamp, sizeof(stamp), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, now.millis);
  char prefix[96];
  std::snprintf(prefix, sizeof(prefix), "[%s hca:%s t%d] ", stamp,
                kNames[static_cast<int>(level)], threadLogId());
  return prefix + message;
}

void Logger::write(LogLevel level, const std::string& message) {
  const std::string line = formatLine(level, message);
  MutexLock lock(mutex_);
  std::cerr << line << '\n';
}

}  // namespace hca
