// E5: the scalability claim (Sections 1 and 7) — HCA "easily scales with
// the architecture" because every sub-problem stays a 4-node assignment
// regardless of the machine size, while a flat engine's per-step candidate
// count grows with the CN count.
//
// Sweeps fabric sizes (16 / 64 / 256 CNs) with synthetic DDGs sized
// proportionally, reporting wall time and candidates evaluated for HCA,
// and (up to 64 CNs) the flat baseline for contrast.

#include <cstdio>
#include <ctime>

#include "baseline/flat_ica.hpp"
#include "ddg/builder.hpp"
#include "hca/driver.hpp"

using namespace hca;

namespace {

/// Synthetic filter bank: independent load -> mac-chain -> store pipelines,
/// the shape DSPFabric is designed for. Scales with the machine.
ddg::Ddg filterBank(int chains, int chainLength) {
  ddg::DdgBuilder b;
  const auto one = b.cst(1);
  for (int c = 0; c < chains; ++c) {
    auto ptr = b.carry(c * 64, "p" + std::to_string(c));
    const auto next = b.add(ptr, one);
    b.close(ptr, next, 1);
    const auto x = b.load(next, 0);
    auto acc = b.mul(x, b.cst(3 + c));
    for (int i = 1; i < chainLength; ++i) {
      acc = b.mac(acc, x, b.cst(i));
    }
    b.store(next, acc, 32);
  }
  return b.finish();
}

}  // namespace

int main() {
  std::printf(
      "%-8s %6s %8s | %10s %12s | %10s %12s\n", "CNs", "levels", "ddgOps",
      "hca-sec", "hca-cands", "flat-sec", "flat-cands");
  std::printf("%s\n", std::string(78, '-').c_str());

  struct Shape {
    std::vector<int> branching;
    int chains;
  };
  const Shape shapes[] = {
      {{4, 4}, 4},
      {{4, 4, 4}, 12},
      {{4, 4, 4, 4}, 32},
  };
  for (const auto& shape : shapes) {
    machine::DspFabricConfig config;
    config.branching = shape.branching;
    config.n = config.m = config.k = 8;
    const machine::DspFabricModel model(config);

    const auto ddg = filterBank(shape.chains, 4);

    std::clock_t t0 = std::clock();
    core::HcaOptions options;
    options.targetIiSlack = 4;
    options.searchProfiles = 3;
    const core::HcaDriver driver(model, options);
    const auto hca = driver.run(ddg);
    const double hcaSec =
        static_cast<double>(std::clock() - t0) / CLOCKS_PER_SEC;

    double flatSec = -1;
    long long flatCands = -1;
    if (model.totalCns() <= 64) {
      t0 = std::clock();
      const auto flat = baseline::runFlatIca(ddg, model);
      flatSec = static_cast<double>(std::clock() - t0) / CLOCKS_PER_SEC;
      flatCands = flat.seeStats.candidatesEvaluated;
    }

    std::printf("%-8d %6d %8d | %9.2fs%c %12lld | ", model.totalCns(),
                model.numLevels(), ddg.stats().numInstructions, hcaSec,
                hca.legal ? ' ' : '!',
                static_cast<long long>(hca.stats.candidatesEvaluated));
    if (flatSec >= 0) {
      std::printf("%9.2fs %12lld\n", flatSec, flatCands);
    } else {
      std::printf("%10s %12s\n", "n/a(>64)", "-");
    }
  }
  std::printf(
      "\n('!' marks an illegal clusterization; the flat engine cannot\n"
      "represent fabrics beyond 64 CNs at all, while HCA's per-level\n"
      "problems stay 4-node assignments at every size.)\n");
  return 0;
}
