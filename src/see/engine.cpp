#include "see/engine.hpp"

#include <algorithm>
#include <unordered_set>

#include "see/route_allocator.hpp"
#include "support/check.hpp"
#include "support/log.hpp"
#include "support/str.hpp"

namespace hca::see {

SpaceExplorationEngine::SpaceExplorationEngine(SeeOptions options)
    : options_(options) {
  HCA_REQUIRE(options_.beamWidth >= 1, "beam width must be >= 1");
  HCA_REQUIRE(options_.candidateKeep >= 1, "candidate keep must be >= 1");
  HCA_REQUIRE(options_.maxRouteHops >= 1, "route hops must be >= 1");
}

namespace {
std::string describeItem(const Item& item) {
  return item.kind == Item::Kind::kNode
             ? strCat("node ", to_string(item.node))
             : strCat("relay of value ", to_string(item.value));
}

std::string describeGroup(const ItemGroup& group) {
  if (group.members.size() == 1) return describeItem(group.members.front());
  std::string out = "co-location group {";
  for (std::size_t i = 0; i < group.members.size(); ++i) {
    if (i > 0) out += ", ";
    out += describeItem(group.members[i]);
  }
  return out + "}";
}

/// Assigns every member of `group` to `cluster` on a clone of `state`;
/// nullopt when some member is not directly assignable there.
std::optional<PartialSolution> assignGroupDirect(
    const PreparedProblem& prepared, const PartialSolution& state,
    const ItemGroup& group, ClusterId cluster) {
  PartialSolution candidate = state;
  for (const Item& item : group.members) {
    if (!candidate.canAssign(prepared, item, cluster)) return std::nullopt;
    candidate.assign(prepared, item, cluster);
  }
  return candidate;
}
}  // namespace

SeeResult SpaceExplorationEngine::run(const SeeProblem& problem,
                                      const CancellationToken* cancel) const {
  SeeResult result = runOnce(problem, options_, cancel);
  if (result.legal || !options_.retryLadder) return result;
  if (cancel != nullptr && cancel->cancelled()) return result;
  // Diversification ladder (part of the node-filter design): a narrower,
  // route-heavier search sometimes reaches a legal corner of the space the
  // scored beam pruned away. Statistics accumulate across attempts.
  std::vector<SeeOptions> ladder;
  {
    SeeOptions greedy = options_;
    greedy.beamWidth = 1;
    greedy.candidateKeep = 1;
    greedy.eagerRouting = false;
    ladder.push_back(greedy);
    SeeOptions deeper = greedy;
    deeper.beamWidth = 2;
    deeper.candidateKeep = 2;
    deeper.maxRouteHops = options_.maxRouteHops + 2;
    ladder.push_back(deeper);
    SeeOptions balanced = options_;
    balanced.eagerRouting = !options_.eagerRouting;
    ladder.push_back(balanced);
  }
  for (const SeeOptions& attempt : ladder) {
    if (cancel != nullptr && cancel->cancelled()) return result;
    SeeResult retry = runOnce(problem, attempt, cancel);
    retry.stats.merge(result.stats);
    result = std::move(retry);
    if (result.legal) return result;
  }
  return result;
}

SeeResult SpaceExplorationEngine::runOnce(
    const SeeProblem& problem, const SeeOptions& options,
    const CancellationToken* cancel) const {
  const PreparedProblem prepared(problem, options);
  const WeightedObjective objective(options.weights);

  SeeResult result;
  std::vector<PartialSolution> frontier;
  frontier.push_back(PartialSolution::initial(prepared));
  frontier.back().setObjective(
      objective.evaluate(prepared, frontier.back()));

  for (const ItemGroup& group : prepared.items()) {
    if (cancel != nullptr && cancel->cancelled()) {
      result.legal = false;
      result.failedItem = group.members.front();
      result.failureReason = "cancelled";
      result.solution = frontier.front();
      return result;
    }
    if (options.maxBeamSteps > 0 &&
        result.stats.statesExplored >= options.maxBeamSteps) {
      result.legal = false;
      result.failedItem = group.members.front();
      result.failureReason =
          strCat("beam step budget exhausted (", options.maxBeamSteps, ")");
      result.solution = frontier.front();
      return result;
    }
    std::vector<PartialSolution> next;
    std::vector<int> parentOf;  // parallel to next: index into frontier
    int parentIndex = -1;
    for (const PartialSolution& state : frontier) {
      ++parentIndex;
      ++result.stats.statesExplored;
      // Enumerate candidates via isAssignable, score survivors. With eager
      // routing, clusters that are only reachable through relays are
      // offered too (at their true copy cost).
      std::vector<PartialSolution> scored;
      for (const ClusterId c : prepared.clusters()) {
        if (auto candidate = assignGroupDirect(prepared, state, group, c)) {
          ++result.stats.candidatesEvaluated;
          candidate->setObjective(objective.evaluate(prepared, *candidate));
          scored.push_back(std::move(*candidate));
        } else if (options.eagerRouting && options.enableRouteAllocator) {
          int routed = 0;
          auto sol = RouteAllocator::tryAssignGroup(prepared, state, group, c,
                                                    &routed);
          if (!sol.has_value()) {
            ++result.stats.routeFailures;
            continue;
          }
          ++result.stats.candidatesEvaluated;
          result.stats.routedOperands += routed;
          sol->setObjective(objective.evaluate(prepared, *sol));
          scored.push_back(std::move(*sol));
        }
      }
      if (scored.empty() && options.enableRouteAllocator &&
          !options.eagerRouting) {
        // No candidates action: try routing onto each cluster.
        ++result.stats.routeInvocations;
        int routed = 0;
        for (const ClusterId c : prepared.clusters()) {
          auto sol = RouteAllocator::tryAssignGroup(prepared, state, group,
                                                    c, &routed);
          if (!sol.has_value()) {
            ++result.stats.routeFailures;
            continue;
          }
          ++result.stats.candidatesEvaluated;
          sol->setObjective(objective.evaluate(prepared, *sol));
          scored.push_back(std::move(*sol));
        }
        result.stats.routedOperands += routed;
      }
      // Candidate filter: keep the best few expansions of this state.
      std::sort(scored.begin(), scored.end(),
                [](const PartialSolution& a, const PartialSolution& b) {
                  return a.objective() < b.objective();
                });
      const auto keep = std::min<std::size_t>(
          scored.size(), static_cast<std::size_t>(options.candidateKeep));
      result.stats.candidateRejections +=
          static_cast<std::int64_t>(scored.size() - keep);
      for (std::size_t i = 0; i < keep; ++i) {
        next.push_back(std::move(scored[i]));
        parentOf.push_back(parentIndex);
      }
    }

    if (next.empty()) {
      result.legal = false;
      result.failedItem = group.members.front();
      result.failureReason =
          strCat("no candidates for ", describeGroup(group),
                 " in any frontier state (communication patterns exhausted)");
      HCA_DEBUG("SEE failed: " << result.failureReason);
      result.solution = frontier.front();
      return result;
    }

    // Node filter: keep the beam, deduped, but parent-diverse — the best
    // child of every surviving parent is retained first so a feasible
    // lineage is never pruned purely on score, then the remaining slots go
    // to the globally best states.
    std::vector<std::size_t> order(next.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return next[a].objective() < next[b].objective();
    });
    std::vector<char> isParentBest(frontier.size(), 0);
    std::vector<char> selected(next.size(), 0);
    std::vector<std::size_t> chosen;
    std::unordered_set<std::uint64_t> seen;
    for (const std::size_t i : order) {  // best child per parent
      const int parent = parentOf[i];
      if (isParentBest[static_cast<std::size_t>(parent)] != 0) continue;
      isParentBest[static_cast<std::size_t>(parent)] = 1;
      if (!seen.insert(next[i].signature()).second) continue;
      selected[i] = 1;
      chosen.push_back(i);
    }
    for (const std::size_t i : order) {  // fill up with global best
      if (static_cast<int>(chosen.size()) >= options.beamWidth) break;
      if (selected[i] != 0) continue;
      if (!seen.insert(next[i].signature()).second) continue;
      selected[i] = 1;
      chosen.push_back(i);
    }
    std::sort(chosen.begin(), chosen.end(), [&](std::size_t a, std::size_t b) {
      return next[a].objective() < next[b].objective();
    });
    if (static_cast<int>(chosen.size()) > options.beamWidth) {
      chosen.resize(static_cast<std::size_t>(options.beamWidth));
    }
    std::vector<PartialSolution> pruned;
    pruned.reserve(chosen.size());
    for (const std::size_t i : chosen) pruned.push_back(std::move(next[i]));
    result.stats.statesPruned +=
        static_cast<std::int64_t>(next.size() - pruned.size());
    frontier = std::move(pruned);
  }

  result.legal = true;
  result.solution = frontier.front();
  result.alternatives = std::move(frontier);
  return result;
}

}  // namespace hca::see
