// Crash-safe checkpoint/resume and the fault-isolated batch driver.
//
// The load-bearing property is resume *identity*: a run interrupted at an
// arbitrary attempt boundary and resumed from its checkpoint file must
// produce byte-identical results — placement, reconfiguration stream AND
// the aggregate HcaStats (wall-clock metrics excepted) — to a run that was
// never interrupted. The suite drives real HcaDriver runs on every Table 1
// kernel, kills them at attempt boundaries via the manager's test seam, and
// compares field by field. The corruption half feeds damaged checkpoint
// files to the parser and expects typed rejections, never garbage results.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ddg/kernels.hpp"
#include "ddg/serialize.hpp"
#include "hca/batch.hpp"
#include "hca/checkpoint.hpp"
#include "hca/driver.hpp"
#include "hca/subproblem_cache.hpp"
#include "support/check.hpp"
#include "support/io.hpp"
#include "support/json.hpp"
#include "support/thread_pool.hpp"

namespace hca {
namespace {

using core::CheckpointAttempt;
using core::CheckpointData;
using core::CheckpointError;
using core::CheckpointManager;
using core::HcaDriver;
using core::HcaOptions;
using core::HcaResult;

std::string tmpPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

machine::DspFabricModel paperFabric() {
  machine::DspFabricConfig config;
  config.n = config.m = config.k = 8;
  return machine::DspFabricModel(config);
}

const ddg::Kernel& kernelNamed(const std::string& name) {
  static const std::vector<ddg::Kernel> kernels = ddg::table1Kernels();
  for (const auto& kernel : kernels) {
    if (kernel.name == name) return kernel;
  }
  throw InvalidArgumentError("no such kernel: " + name);
}

/// Full identity: verdict, placement, reconfiguration stream and every
/// HcaStats counter. This is the checkpoint contract, which is strictly
/// stronger than the portfolio determinism contract (that one exempts the
/// effort counters; resume identity does not).
void expectIdenticalRun(const HcaResult& a, const HcaResult& b) {
  ASSERT_EQ(a.legal, b.legal) << a.failureReason << " vs " << b.failureReason;
  EXPECT_EQ(a.failureReason, b.failureReason);
  EXPECT_EQ(a.fallbackUsed, b.fallbackUsed);
  ASSERT_EQ(a.assignment.size(), b.assignment.size());
  for (std::size_t i = 0; i < a.assignment.size(); ++i) {
    ASSERT_EQ(a.assignment[i], b.assignment[i])
        << "assignment diverges at " << i;
  }
  ASSERT_EQ(a.relays.size(), b.relays.size());
  for (std::size_t i = 0; i < a.relays.size(); ++i) {
    EXPECT_EQ(a.relays[i].value, b.relays[i].value);
    EXPECT_EQ(a.relays[i].cn, b.relays[i].cn);
  }
  EXPECT_EQ(a.reconfig.toString(), b.reconfig.toString());
  EXPECT_EQ(a.stats.problemsSolved, b.stats.problemsSolved);
  EXPECT_EQ(a.stats.backtrackAttempts, b.stats.backtrackAttempts);
  EXPECT_EQ(a.stats.outerAttempts, b.stats.outerAttempts);
  EXPECT_EQ(a.stats.achievedTargetIi, b.stats.achievedTargetIi);
  EXPECT_EQ(a.stats.attemptsCancelled, b.stats.attemptsCancelled);
  EXPECT_EQ(a.stats.statesExplored, b.stats.statesExplored);
  EXPECT_EQ(a.stats.candidatesEvaluated, b.stats.candidatesEvaluated);
  EXPECT_EQ(a.stats.routeInvocations, b.stats.routeInvocations);
  EXPECT_EQ(a.stats.cacheHits, b.stats.cacheHits);
  EXPECT_EQ(a.stats.cacheMisses, b.stats.cacheMisses);
  EXPECT_EQ(a.stats.maxWirePressure, b.stats.maxWirePressure);
  EXPECT_EQ(a.stats.seeCopiesAvoided, b.stats.seeCopiesAvoided);
  EXPECT_EQ(a.stats.seeSnapshotsMaterialized, b.stats.seeSnapshotsMaterialized);
  EXPECT_EQ(a.stats.seeArenaBytesPeak, b.stats.seeArenaBytesPeak);
}

/// A per-attempt SEE expansion budget low enough that early attempts fail
/// (so there is something to checkpoint) but — per kernel — chosen so the
/// escalation ladder still ends in a legal mapping where possible.
HcaOptions budgetedOptions(int maxBeamSteps) {
  HcaOptions options;
  options.maxBeamSteps = maxBeamSteps;
  return options;
}

/// One driver run against a checkpoint file. `cancelAfter` > 0 cancels the
/// external token as soon as that many attempts have been recorded — the
/// in-process equivalent of `kill` at a checkpoint boundary.
HcaResult runWithCheckpoint(const ddg::Kernel& kernel, HcaOptions options,
                            const std::string& checkpointPath,
                            int cancelAfter = 0) {
  CheckpointManager manager(checkpointPath);
  manager.loadForResume();
  CancellationToken stop;
  options.checkpoint = &manager;
  options.externalCancel = &stop;
  if (cancelAfter > 0) {
    manager.onAttemptRecorded = [&stop, cancelAfter](int recorded) {
      if (recorded >= cancelAfter) stop.cancel();
    };
  }
  const HcaDriver driver(paperFabric(), options);
  HcaResult result = driver.run(kernel.ddg);
  manager.flush();
  return result;
}

// --- atomic I/O ------------------------------------------------------------

TEST(AtomicIoTest, WriteReadRoundTripAndOverwrite) {
  const std::string path = tmpPath("io_roundtrip.txt");
  atomicWriteFile(path, "first\n");
  EXPECT_EQ(readFile(path), "first\n");
  atomicWriteFile(path, "second, longer payload\n");
  EXPECT_EQ(readFile(path), "second, longer payload\n");
  EXPECT_TRUE(fileExists(path));
  removeFileIfExists(path);
  EXPECT_FALSE(fileExists(path));
  removeFileIfExists(path);  // idempotent
}

TEST(AtomicIoTest, MissingFileIsTypedIoError) {
  EXPECT_THROW(readFile(tmpPath("does_not_exist")), IoError);
}

TEST(AtomicIoTest, UnwritableDirectoryIsTypedIoError) {
  EXPECT_THROW(atomicWriteFile("/nonexistent-dir/sub/file.json", "x"),
               IoError);
}

// --- checkpoint format and corruption --------------------------------------

CheckpointData sampleData() {
  CheckpointData data;
  data.fingerprint = "00c0ffee00c0ffee";
  data.iniMii = 3;
  CheckpointAttempt attempt;
  attempt.phase = "sweep";
  attempt.index = 0;
  attempt.target = 3;
  attempt.profile = 0;
  attempt.failureReason = "sub-problem [] (level 0): beam step budget";
  attempt.stats.problemsSolved = 7;
  attempt.stats.outerAttempts = 1;
  attempt.stats.statesExplored = 123;
  attempt.stats.seeArenaBytesPeak = 4096;
  data.attempts.push_back(attempt);
  data.cacheByScope[""] = {};
  return data;
}

CheckpointError::Kind parseKind(const std::string& bytes) {
  try {
    (void)core::parseCheckpoint(bytes);
  } catch (const CheckpointError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "parseCheckpoint accepted corrupt bytes";
  return CheckpointError::Kind::kBadMagic;
}

TEST(CheckpointFormatTest, SerializeParseRoundTrip) {
  const std::string bytes = core::serializeCheckpoint(sampleData());
  const CheckpointData parsed = core::parseCheckpoint(bytes);
  EXPECT_EQ(parsed.fingerprint, "00c0ffee00c0ffee");
  EXPECT_EQ(parsed.iniMii, 3);
  ASSERT_EQ(parsed.attempts.size(), 1u);
  EXPECT_EQ(parsed.attempts[0].phase, "sweep");
  EXPECT_EQ(parsed.attempts[0].failureReason,
            "sub-problem [] (level 0): beam step budget");
  EXPECT_EQ(parsed.attempts[0].stats.problemsSolved, 7);
  EXPECT_EQ(parsed.attempts[0].stats.statesExplored, 123);
  EXPECT_EQ(parsed.attempts[0].stats.seeArenaBytesPeak, 4096);
}

TEST(CheckpointFormatTest, TruncationRejected) {
  const std::string bytes = core::serializeCheckpoint(sampleData());
  // Every strictly-shorter prefix that still has a complete header must be
  // rejected as truncated — a crash mid-write may leave any length behind.
  const std::size_t headerEnd = bytes.find('\n') + 1;
  for (const std::size_t keep :
       {bytes.size() - 1, bytes.size() - 17, headerEnd}) {
    EXPECT_EQ(parseKind(bytes.substr(0, keep)),
              CheckpointError::Kind::kTruncated)
        << "kept " << keep << " of " << bytes.size() << " bytes";
  }
}

TEST(CheckpointFormatTest, FlippedPayloadByteRejected) {
  std::string bytes = core::serializeCheckpoint(sampleData());
  bytes[bytes.size() / 2] ^= 0x20;
  EXPECT_EQ(parseKind(bytes), CheckpointError::Kind::kBadChecksum);
}

TEST(CheckpointFormatTest, BadVersionRejected) {
  std::string bytes = core::serializeCheckpoint(sampleData());
  ASSERT_EQ(bytes.rfind("HCACHK 1 ", 0), 0u);
  bytes[7] = '9';
  EXPECT_EQ(parseKind(bytes), CheckpointError::Kind::kBadVersion);
}

TEST(CheckpointFormatTest, BadMagicRejected) {
  std::string bytes = core::serializeCheckpoint(sampleData());
  bytes[0] = 'X';
  EXPECT_EQ(parseKind(bytes), CheckpointError::Kind::kBadMagic);
  EXPECT_EQ(parseKind(""), CheckpointError::Kind::kBadMagic);
  EXPECT_EQ(parseKind("not a checkpoint at all"),
            CheckpointError::Kind::kBadMagic);
}

TEST(CheckpointFormatTest, ChecksummedGarbagePayloadRejected) {
  // A correct header over a payload with the wrong shape must fail payload
  // validation, not crash or return defaults.
  const std::string payload = "{\"fingerprint\":12}";
  std::ostringstream os;
  os << "HCACHK 1 " << std::hex << std::setw(16) << std::setfill('0')
     << core::fnv1a64(payload) << std::dec << " " << payload.size() << "\n"
     << payload;
  EXPECT_EQ(parseKind(os.str()), CheckpointError::Kind::kBadPayload);
}

// --- manager ---------------------------------------------------------------

TEST(CheckpointManagerTest, MissingFileMeansFreshStart) {
  CheckpointManager manager(tmpPath("never_written.ckpt"));
  EXPECT_FALSE(manager.loadForResume());
  EXPECT_EQ(manager.attemptsRecorded(), 0);
}

TEST(CheckpointManagerTest, ResumeAgainstDifferentRunRejected) {
  const std::string path = tmpPath("wrong_run.ckpt");
  removeFileIfExists(path);
  // Interrupt a fir2dim run so the file records fir2dim's fingerprint.
  (void)runWithCheckpoint(kernelNamed("fir2dim"), budgetedOptions(40), path,
                          /*cancelAfter=*/1);
  ASSERT_TRUE(fileExists(path));

  // Resuming it against a different kernel is a typed kWrongRun error.
  try {
    (void)runWithCheckpoint(kernelNamed("idcthor"), budgetedOptions(40),
                            path);
    FAIL() << "resume against a different DDG was accepted";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointError::Kind::kWrongRun);
  }

  // Same DDG but different result-affecting options: also a different run.
  try {
    (void)runWithCheckpoint(kernelNamed("fir2dim"), budgetedOptions(41),
                            path);
    FAIL() << "resume with different maxBeamSteps was accepted";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointError::Kind::kWrongRun);
  }
}

TEST(CheckpointManagerTest, ThrottledWritesStillFlushEverything) {
  const std::string path = tmpPath("throttled.ckpt");
  removeFileIfExists(path);
  CheckpointManager manager(path, /*everyMs=*/3'600'000);
  CancellationToken stop;
  HcaOptions options = budgetedOptions(100);
  options.checkpoint = &manager;
  options.externalCancel = &stop;
  manager.onAttemptRecorded = [&stop](int recorded) {
    if (recorded >= 5) stop.cancel();
  };
  const HcaDriver driver(paperFabric(), options);
  (void)driver.run(kernelNamed("idcthor").ddg);
  ASSERT_EQ(manager.attemptsRecorded(), 5);
  // The first recorded attempt wrote the file; the next four sat behind the
  // one-hour throttle. flush() must persist all of them.
  ASSERT_TRUE(fileExists(path));
  EXPECT_EQ(core::parseCheckpoint(readFile(path)).attempts.size(), 1u);
  manager.flush();
  EXPECT_EQ(core::parseCheckpoint(readFile(path)).attempts.size(), 5u);
}

// --- resume identity (the tentpole) ----------------------------------------

/// Interrupts a run after `cancelAfter` recorded attempts, resumes it from
/// the file, and demands byte-identity with an uninterrupted run.
void checkResumeIdentity(const std::string& kernelName, int maxBeamSteps,
                         int cancelAfter) {
  SCOPED_TRACE(kernelName + " cancelAfter=" + std::to_string(cancelAfter));
  const ddg::Kernel& kernel = kernelNamed(kernelName);
  const std::string path = tmpPath("resume_" + kernelName + "_" +
                                   std::to_string(cancelAfter) + ".ckpt");
  removeFileIfExists(path);

  // A: the reference — never interrupted, no checkpointing at all.
  const HcaDriver plain(paperFabric(), budgetedOptions(maxBeamSteps));
  const HcaResult uninterrupted = plain.run(kernel.ddg);

  // B: interrupted at the attempt boundary. Must not have completed.
  const HcaResult interrupted = runWithCheckpoint(
      kernel, budgetedOptions(maxBeamSteps), path, cancelAfter);
  ASSERT_FALSE(interrupted.legal)
      << "interruption came too late to exercise resume";
  ASSERT_TRUE(fileExists(path));

  // C: resumed to completion. Byte-identical to A, including every stats
  // counter — the restored attempts contribute their recorded stats and the
  // pre-warmed cache reproduces the original hit/miss sequence.
  const HcaResult resumed =
      runWithCheckpoint(kernel, budgetedOptions(maxBeamSteps), path);
  expectIdenticalRun(uninterrupted, resumed);
}

// Budgets per kernel: small enough that the primary sweep fails several
// attempts (populating the checkpoint), large enough that the run ends in a
// legal mapping via the ladder — except idcthor/40, the all-attempts-fail
// case, which checks failure-path identity.
TEST(ResumeIdentityTest, Fir2dim) {
  checkResumeIdentity("fir2dim", /*maxBeamSteps=*/40, /*cancelAfter=*/1);
  checkResumeIdentity("fir2dim", /*maxBeamSteps=*/40, /*cancelAfter=*/7);
}

TEST(ResumeIdentityTest, Fir2dimInterruptedInsideDegradedLadder) {
  // 35 primary attempts fail before the degraded-bandwidth rung starts its
  // own sweep with its own cache scope; interrupting at 38 lands inside the
  // nested ladder and exercises the per-scope cache snapshots.
  checkResumeIdentity("fir2dim", /*maxBeamSteps=*/40, /*cancelAfter=*/38);
}

TEST(ResumeIdentityTest, Idcthor) {
  checkResumeIdentity("idcthor", /*maxBeamSteps=*/100, /*cancelAfter=*/3);
}

TEST(ResumeIdentityTest, IdcthorFullFailureRun) {
  checkResumeIdentity("idcthor", /*maxBeamSteps=*/40, /*cancelAfter=*/9);
}

TEST(ResumeIdentityTest, Mpeg2inter) {
  checkResumeIdentity("mpeg2inter", /*maxBeamSteps=*/60, /*cancelAfter=*/5);
}

TEST(ResumeIdentityTest, H264deblocking) {
  checkResumeIdentity("h264deblocking", /*maxBeamSteps=*/60,
                      /*cancelAfter=*/5);
}

TEST(ResumeIdentityTest, DoubleInterruptionThenResume) {
  // Crash, resume, crash again, resume again: the second checkpoint is a
  // superset of the first, and the final run is still byte-identical.
  const ddg::Kernel& kernel = kernelNamed("idcthor");
  const std::string path = tmpPath("double_interrupt.ckpt");
  removeFileIfExists(path);
  const HcaDriver plain(paperFabric(), budgetedOptions(100));
  const HcaResult uninterrupted = plain.run(kernel.ddg);

  ASSERT_FALSE(
      runWithCheckpoint(kernel, budgetedOptions(100), path, 2).legal);
  ASSERT_FALSE(
      runWithCheckpoint(kernel, budgetedOptions(100), path, 6).legal);
  EXPECT_GE(core::parseCheckpoint(readFile(path)).attempts.size(), 6u);
  const HcaResult resumed =
      runWithCheckpoint(kernel, budgetedOptions(100), path);
  expectIdenticalRun(uninterrupted, resumed);
}

TEST(ResumeIdentityTest, ParallelSweepResumesToSameResult) {
  // Thread count is results-invisible (and excluded from the fingerprint):
  // a serial-interrupted run resumed with a 4-thread portfolio still lands
  // on the identical mapping. Effort counters are scheduling-dependent in
  // parallel sweeps, so only the result fields are compared here.
  const ddg::Kernel& kernel = kernelNamed("idcthor");
  const std::string path = tmpPath("parallel_resume.ckpt");
  removeFileIfExists(path);
  const HcaDriver plain(paperFabric(), budgetedOptions(100));
  const HcaResult uninterrupted = plain.run(kernel.ddg);

  ASSERT_FALSE(
      runWithCheckpoint(kernel, budgetedOptions(100), path, 3).legal);
  HcaOptions parallel = budgetedOptions(100);
  parallel.numThreads = 4;
  const HcaResult resumed = runWithCheckpoint(kernel, parallel, path);
  ASSERT_EQ(uninterrupted.legal, resumed.legal);
  EXPECT_EQ(uninterrupted.stats.achievedTargetIi,
            resumed.stats.achievedTargetIi);
  EXPECT_EQ(uninterrupted.fallbackUsed, resumed.fallbackUsed);
  ASSERT_EQ(uninterrupted.assignment.size(), resumed.assignment.size());
  for (std::size_t i = 0; i < uninterrupted.assignment.size(); ++i) {
    ASSERT_EQ(uninterrupted.assignment[i], resumed.assignment[i]);
  }
  EXPECT_EQ(uninterrupted.reconfig.toString(), resumed.reconfig.toString());
}

// --- memory budgets --------------------------------------------------------

TEST(MemoryBudgetTest, TinyArenaBudgetFailsCleanlyNotOom) {
  HcaOptions options;
  options.memoryBudgetBytes = 2048;  // 1KB arena share: trips immediately
  options.degradedFallback = false;
  options.targetIiSlack = 0;
  options.searchProfiles = 1;
  const HcaDriver driver(paperFabric(), options);
  const HcaResult result = driver.run(kernelNamed("fir2dim").ddg);
  ASSERT_FALSE(result.legal);
  EXPECT_NE(result.failureReason.find("memory budget exceeded"),
            std::string::npos)
      << result.failureReason;
}

TEST(MemoryBudgetTest, AmpleBudgetIsResultInvisible) {
  HcaOptions ample;
  ample.memoryBudgetBytes = std::int64_t{1} << 30;
  const HcaDriver budgeted(paperFabric(), ample);
  const HcaDriver unbudgeted(paperFabric(), HcaOptions{});
  const ddg::Kernel& kernel = kernelNamed("fir2dim");
  expectIdenticalRun(unbudgeted.run(kernel.ddg), budgeted.run(kernel.ddg));
}

TEST(MemoryBudgetTest, CacheShedsOldestUnderByteCeiling) {
  see::SeeResult result;
  result.failureReason = std::string(256, 'x');
  const std::int64_t perEntry =
      core::SubproblemCache::approxEntryBytes("key-000", result);
  // Room for about three entries in the single shard.
  core::SubproblemCache cache(/*numShards=*/1, /*maxEntriesPerShard=*/0,
                              /*maxBytesPerShard=*/3 * perEntry + 16);
  for (int i = 0; i < 8; ++i) {
    char key[16];
    std::snprintf(key, sizeof key, "key-%03d", i);
    (void)cache.insert(key, result);
  }
  EXPECT_LE(cache.bytesUsed(), 3 * perEntry + 16);
  EXPECT_LT(cache.entries(), 8);
  const auto stats = cache.shardStats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_GT(stats[0].evictions, 0);
  // Oldest-first: the first key is gone, the last one is resident.
  EXPECT_EQ(cache.lookup("key-000"), nullptr);
  EXPECT_NE(cache.lookup("key-007"), nullptr);
}

TEST(MemoryBudgetTest, ForEachVisitsInInsertionOrder) {
  core::SubproblemCache cache(/*numShards=*/1);
  see::SeeResult result;
  for (const char* key : {"b", "a", "c"}) {
    (void)cache.insert(key, result);
  }
  std::vector<std::string> seen;
  cache.forEach([&seen](const std::string& key,
                        const std::shared_ptr<const see::SeeResult>&) {
    seen.push_back(key);
  });
  EXPECT_EQ(seen, (std::vector<std::string>{"b", "a", "c"}));
}

// --- batch driver ----------------------------------------------------------

TEST(BatchManifestTest, ParsesFullSchema) {
  const auto jobs = core::parseManifest(R"({"jobs": [
    {"name": "a", "kernel": "fir2dim", "deadline_ms": 250,
     "max_retries": 2, "backoff_base_ms": 5, "degrade_on_last_retry": false,
     "fail_first_attempts": 1, "checkpoint": "a.ckpt",
     "memory_budget_mb": 64, "threads": 2, "target_ii_slack": 3,
     "faults": "cn:3"},
    {"name": "b", "ddg": "b.ddg"}
  ]})");
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].kernel, "fir2dim");
  EXPECT_EQ(jobs[0].deadlineMs, 250);
  EXPECT_EQ(jobs[0].maxRetries, 2);
  EXPECT_EQ(jobs[0].backoffBaseMs, 5);
  EXPECT_FALSE(jobs[0].degradeOnLastRetry);
  EXPECT_EQ(jobs[0].failFirstAttempts, 1);
  EXPECT_EQ(jobs[0].checkpointPath, "a.ckpt");
  EXPECT_EQ(jobs[0].memoryBudgetBytes, std::int64_t{64} * 1024 * 1024);
  EXPECT_EQ(jobs[0].threads, 2);
  EXPECT_EQ(jobs[0].targetIiSlack, 3);
  EXPECT_EQ(jobs[0].faults, "cn:3");
  EXPECT_EQ(jobs[1].ddgPath, "b.ddg");
  EXPECT_TRUE(jobs[1].degradeOnLastRetry);  // default
}

TEST(BatchManifestTest, RejectsMalformedManifests) {
  EXPECT_THROW(core::parseManifest("not json"), InvalidArgumentError);
  EXPECT_THROW(core::parseManifest("{}"), InvalidArgumentError);
  EXPECT_THROW(core::parseManifest(R"({"jobs": []})"), InvalidArgumentError);
  // missing name
  EXPECT_THROW(core::parseManifest(R"({"jobs": [{"kernel": "fir2dim"}]})"),
               InvalidArgumentError);
  // name unsafe for a report filename
  EXPECT_THROW(core::parseManifest(
                   R"({"jobs": [{"name": "../x", "kernel": "fir2dim"}]})"),
               InvalidArgumentError);
  // duplicate names
  EXPECT_THROW(
      core::parseManifest(R"({"jobs": [{"name": "a", "kernel": "fir2dim"},
                                       {"name": "a", "kernel": "idcthor"}]})"),
      InvalidArgumentError);
  // both kernel and ddg
  EXPECT_THROW(core::parseManifest(
                   R"({"jobs": [{"name": "a", "kernel": "x", "ddg": "y"}]})"),
               InvalidArgumentError);
  // neither kernel nor ddg
  EXPECT_THROW(core::parseManifest(R"({"jobs": [{"name": "a"}]})"),
               InvalidArgumentError);
  // unknown member (typo-proofing)
  EXPECT_THROW(
      core::parseManifest(
          R"({"jobs": [{"name": "a", "kernel": "x", "deadline": 5}]})"),
      InvalidArgumentError);
  // negative budget
  EXPECT_THROW(
      core::parseManifest(
          R"({"jobs": [{"name": "a", "kernel": "x", "max_retries": -1}]})"),
      InvalidArgumentError);
}

TEST(BatchBackoffTest, DeterministicExponentialWithJitterAndCap) {
  const std::int64_t first = core::backoffDelayMs("job", 2, 100);
  const std::int64_t second = core::backoffDelayMs("job", 3, 100);
  EXPECT_EQ(first, core::backoffDelayMs("job", 2, 100));  // deterministic
  EXPECT_GE(first, 100);
  EXPECT_LT(first, 200);  // base + jitter in [0, base)
  EXPECT_GE(second, 200);
  EXPECT_LT(second, 300);
  // Different jobs de-synchronize.
  EXPECT_NE(core::backoffDelayMs("job-a", 2, 1000),
            core::backoffDelayMs("job-b", 2, 1000));
  // The exponential is capped at 30s (plus jitter below base).
  EXPECT_LE(core::backoffDelayMs("job", 40, 10'000), 40'000);
}

TEST(BatchDriverTest, IsolationRetriesAndSummary) {
  core::BatchJob ok;
  ok.name = "ok";
  ok.kernel = "fir2dim";
  core::BatchJob doomed;
  doomed.name = "doomed";
  doomed.kernel = "fir2dim";
  doomed.maxRetries = 2;
  doomed.failFirstAttempts = 3;  // every try fails by injection
  doomed.degradeOnLastRetry = false;
  doomed.backoffBaseMs = 1;
  core::BatchJob invalid;
  invalid.name = "invalid";
  invalid.kernel = "no-such-kernel";
  invalid.maxRetries = 5;  // must NOT be retried: invalid is permanent

  core::BatchOptions options;
  std::vector<std::int64_t> delays;
  options.sleeper = [&delays](std::int64_t ms) { delays.push_back(ms); };
  std::vector<std::string> events;
  options.observer = [&events](const core::BatchJob& job, int tryNumber,
                               const std::string& event) {
    events.push_back(job.name + "/" + std::to_string(tryNumber) + "/" +
                     event);
  };

  const core::BatchSummary summary =
      core::runBatch({ok, doomed, invalid}, options);
  EXPECT_FALSE(summary.allOk());
  EXPECT_EQ(summary.ok, 1);
  EXPECT_EQ(summary.failed, 1);
  EXPECT_EQ(summary.invalid, 1);
  EXPECT_EQ(summary.cancelled, 0);
  ASSERT_EQ(summary.jobs.size(), 3u);
  EXPECT_EQ(summary.jobs[0].status, core::BatchJobStatus::kOk);
  EXPECT_EQ(summary.jobs[0].triesUsed, 1);
  EXPECT_EQ(summary.jobs[1].status, core::BatchJobStatus::kFailed);
  EXPECT_EQ(summary.jobs[1].triesUsed, 3);
  EXPECT_EQ(summary.jobs[2].status, core::BatchJobStatus::kInvalid);
  // Backoff before tries 2 and 3, with the documented deterministic delays.
  ASSERT_EQ(delays.size(), 2u);
  EXPECT_EQ(delays[0], core::backoffDelayMs("doomed", 2, 1));
  EXPECT_EQ(delays[1], core::backoffDelayMs("doomed", 3, 1));
  // The invalid job fails on load, before any try starts.
  EXPECT_TRUE(std::find(events.begin(), events.end(), "invalid/0/invalid") !=
              events.end());
}

TEST(BatchDriverTest, DegradeOnLastRetryProducesDegradedRun) {
  core::BatchJob job;
  job.name = "recovers";
  job.kernel = "fir2dim";
  job.maxRetries = 1;
  job.failFirstAttempts = 1;  // try 1 injected-fails, try 2 runs for real
  job.backoffBaseMs = 1;
  core::BatchOptions options;
  options.sleeper = [](std::int64_t) {};
  const core::BatchSummary summary = core::runBatch({job}, options);
  ASSERT_EQ(summary.jobs.size(), 1u);
  EXPECT_EQ(summary.jobs[0].status, core::BatchJobStatus::kOk);
  EXPECT_EQ(summary.jobs[0].triesUsed, 2);
  EXPECT_TRUE(summary.jobs[0].degraded);
  EXPECT_GT(summary.jobs[0].achievedTargetIi, 0);
}

TEST(BatchDriverTest, TrippedTokenCancelsRemainingJobs) {
  core::BatchJob a;
  a.name = "a";
  a.kernel = "fir2dim";
  core::BatchJob b = a;
  b.name = "b";
  CancellationToken stop;
  stop.cancel();
  core::BatchOptions options;
  options.cancel = &stop;
  const core::BatchSummary summary = core::runBatch({a, b}, options);
  EXPECT_EQ(summary.cancelled, 2);
  for (const auto& job : summary.jobs) {
    EXPECT_EQ(job.status, core::BatchJobStatus::kCancelled);
  }
}

TEST(BatchDriverTest, WritesPerJobReportsAndSummaryJson) {
  core::BatchJob job;
  job.name = "reported";
  job.kernel = "fir2dim";
  core::BatchOptions options;
  options.reportDir = ::testing::TempDir();
  const core::BatchSummary summary = core::runBatch({job}, options);
  ASSERT_EQ(summary.ok, 1);
  const std::string report =
      readFile(options.reportDir + "/reported.report.json");
  JsonValue parsedReport;
  std::string error;
  ASSERT_TRUE(parseJson(report, &parsedReport, &error)) << error;
  const JsonValue* legal = parsedReport.find("legal");
  ASSERT_NE(legal, nullptr);
  EXPECT_TRUE(legal->boolean);

  JsonValue parsedSummary;
  ASSERT_TRUE(parseJson(core::batchSummaryJson(summary), &parsedSummary,
                        &error))
      << error;
  ASSERT_NE(parsedSummary.find("jobs"), nullptr);
  EXPECT_TRUE(parsedSummary.find("all_ok")->boolean);
}

TEST(BatchDriverTest, DdgFileJobAndCheckpointCleanup) {
  // A job can name a DDG file instead of a built-in kernel, and a job that
  // ends legal deletes its checkpoint file (nothing left to resume).
  const std::string ddgPath = tmpPath("batch_job.ddg");
  atomicWriteFile(ddgPath, ddg::toText(kernelNamed("fir2dim").ddg));
  core::BatchJob job;
  job.name = "from-file";
  job.ddgPath = ddgPath;
  job.checkpointPath = tmpPath("batch_job.ckpt");
  removeFileIfExists(job.checkpointPath);
  const core::BatchSummary summary = core::runBatch({job}, {});
  EXPECT_EQ(summary.ok, 1);
  EXPECT_FALSE(fileExists(job.checkpointPath));
}

}  // namespace
}  // namespace hca
