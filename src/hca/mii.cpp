#include "hca/mii.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/str.hpp"

namespace hca::core {

namespace {
int ceilDiv(int a, int b) { return b <= 0 ? 0 : (a + b - 1) / b; }
}  // namespace

std::string MiiReport::toString() const {
  return strCat("MII{rec=", miiRec, ", res=", miiRes, ", ini=", iniMii,
                ", maxCluster=", maxClusterMii, ", wire=", maxWirePressure,
                ", final=", finalMii, "}");
}

int unifiedMiiRes(const ddg::DdgStats& stats,
                  const machine::DspFabricModel& model) {
  // Only surviving CNs contribute issue slots: on a faulty fabric the
  // resource bound rises monotonically with the number of dead clusters.
  const int issue = ceilDiv(stats.numInstructions, model.aliveCns());
  const int mem = ceilDiv(stats.numMemOps, model.config().dmaSlots);
  return std::max({issue, mem, 1});
}

MiiReport computeMii(const ddg::Ddg& ddg,
                     const machine::DspFabricModel& model,
                     const HcaResult& result) {
  MiiReport report;
  report.miiRec =
      static_cast<int>(ddg.miiRec(model.config().latency));
  report.miiRes = unifiedMiiRes(ddg.stats(), model);
  report.iniMii = std::max(report.miiRec, report.miiRes);

  for (const auto& record : result.records) {
    const machine::LevelSpec spec = model.levelSpec(record->level);
    for (const ClusterSummary& s : record->clusterSummaries) {
      const auto& rt = record->pg.node(s.cluster).resources;
      // Issue pressure: instructions plus one receive per incoming value.
      const int issue =
          ceilDiv(s.instructions + s.distinctValuesIn, rt.issueSlots());
      const int alu = ceilDiv(s.aluOps, std::max(rt.alu(), 1));
      const int ag = rt.ag() > 0 ? ceilDiv(s.agOps, rt.ag()) : 0;
      const int inPressure = ceilDiv(s.distinctValuesIn, spec.inWires);
      const int outPressure = ceilDiv(s.distinctValuesOut, spec.outWires);
      report.maxClusterMii =
          std::max({report.maxClusterMii, issue, alu, ag, inPressure,
                    outPressure});
    }
    report.maxWirePressure =
        std::max(report.maxWirePressure, record->mapResult.maxValuesPerWire);
  }
  report.finalMii = std::max(
      {report.iniMii, report.maxClusterMii, report.maxWirePressure, 1});
  return report;
}

}  // namespace hca::core
