#!/usr/bin/env bash
# The repo's CI entry point (also runnable locally): tier-1 tests, the
# thread-safety-analysis build, and the clang-tidy profile.
#
#   1. tier-1   — cmake + build + full ctest suite (the acceptance bar every
#                 change must keep green)
#   2. tsa      — a clang build with -Wthread-safety -Werror=thread-safety
#                 verifying the HCA_GUARDED_BY/HCA_REQUIRES annotations;
#                 skipped with a notice when clang is not installed (GCC has
#                 no thread-safety analysis)
#   3. lint     — tools/run_clang_tidy.sh over src/tools/examples; skips
#                 itself when clang-tidy is missing
#   4. perf     — a Release build running the bench_micro suite once (tiny
#                 repetitions). This is a smoke test: it fails on crash,
#                 assertion, or sanitizer abort inside the benchmarked
#                 paths, never on timing.
#
# Usage: tools/ci.sh [jobs]
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="${1:-$(nproc)}"

echo "=== ci: tier-1 build + tests ==="
cmake -B "${root}/build" -S "${root}"
cmake --build "${root}/build" -j "${jobs}"
(cd "${root}/build" && ctest --output-on-failure -j "${jobs}")

echo "=== ci: thread-safety analysis build ==="
if command -v clang++ >/dev/null 2>&1; then
  cmake -B "${root}/build-tsa" -S "${root}" \
    -DCMAKE_CXX_COMPILER=clang++ -DHCA_WERROR=ON
  cmake --build "${root}/build-tsa" -j "${jobs}"
  echo "ci: thread-safety build clean"
else
  echo "ci: clang++ not found; skipping the thread-safety analysis build"
fi

echo "=== ci: clang-tidy ==="
"${root}/tools/run_clang_tidy.sh" "${root}/build"

echo "=== ci: perf smoke (Release bench_micro) ==="
cmake -B "${root}/build-perf" -S "${root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${root}/build-perf" -j "${jobs}" --target bench_micro
# One pass over every benchmark with minimal timing effort. Exit status is
# the verdict — crashes/aborts in the CoW beam search, the arena, or any
# other benchmarked component fail CI; wall-clock numbers are informational.
(cd "${root}/build-perf/bench" &&
  ./bench_micro --benchmark_min_time=0.01 --benchmark_repetitions=1)
echo "ci: perf smoke passed (timings informational; BENCH_micro.json written)"

echo "=== ci: all stages passed ==="
