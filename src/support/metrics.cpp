#include "support/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "support/json.hpp"

namespace hca {

namespace {

/// Bucket index of `x`: 0 for x < 1, otherwise 1 + floor(log2(x)), capped.
int bucketOf(double x) {
  if (!(x >= 1.0)) return 0;  // also catches NaN
  const int exp = std::ilogb(x);
  return std::min(Histogram::kBuckets - 1, 1 + exp);
}

/// Upper edge of bucket `i` (2^i; bucket 0 ends at 1).
double bucketUpper(int i) { return std::ldexp(1.0, i); }

}  // namespace

void Histogram::add(double x) {
  stats_.add(x);
  ++buckets_[static_cast<std::size_t>(bucketOf(x))];
}

void Histogram::merge(const Histogram& other) {
  stats_.merge(other.stats_);
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[static_cast<std::size_t>(i)] +=
        other.buckets_[static_cast<std::size_t>(i)];
  }
}

double Histogram::quantile(double q) const {
  if (stats_.count() == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(stats_.count());
  std::int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)];
    if (static_cast<double>(seen) >= rank) {
      // The quantile falls in this bucket; report its upper edge clamped
      // to the exact observed range.
      return std::clamp(bucketUpper(i), stats_.min(), stats_.max());
    }
  }
  return stats_.max();
}

std::int64_t& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

void MetricsRegistry::add(const std::string& name, std::int64_t delta) {
  counters_[name] += delta;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return histograms_[name];
}

void MetricsRegistry::observe(const std::string& name, double value) {
  histograms_[name].add(value);
}

std::int64_t MetricsRegistry::counterValue(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

const Histogram* MetricsRegistry::findHistogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, histogram] : other.histograms_) {
    histograms_[name].merge(histogram);
  }
}

void MetricsRegistry::writeJson(JsonWriter& json) const {
  json.beginObject();
  json.key("counters").beginObject();
  for (const auto& [name, value] : counters_) {
    json.key(name).value(value);
  }
  json.endObject();
  json.key("histograms").beginObject();
  for (const auto& [name, histogram] : histograms_) {
    const RunningStats& s = histogram.stats();
    json.key(name).beginObject();
    json.key("count").value(s.count());
    json.key("sum").value(s.sum());
    json.key("mean").value(s.mean());
    json.key("stddev").value(s.stddev());
    json.key("min").value(s.count() > 0 ? s.min() : 0.0);
    json.key("max").value(s.count() > 0 ? s.max() : 0.0);
    json.key("p50").value(histogram.quantile(0.5));
    json.key("p90").value(histogram.quantile(0.9));
    json.key("p99").value(histogram.quantile(0.99));
    json.endObject();
  }
  json.endObject();
  json.endObject();
}

void MetricsRegistry::printTable(std::ostream& os) const {
  std::size_t width = 8;
  for (const auto& [name, value] : counters_) {
    (void)value;
    width = std::max(width, name.size());
  }
  for (const auto& [name, histogram] : histograms_) {
    (void)histogram;
    width = std::max(width, name.size());
  }
  char buf[256];
  if (!counters_.empty()) {
    os << "counters:\n";
    for (const auto& [name, value] : counters_) {
      std::snprintf(buf, sizeof(buf), "  %-*s %12lld\n",
                    static_cast<int>(width), name.c_str(),
                    static_cast<long long>(value));
      os << buf;
    }
  }
  if (!histograms_.empty()) {
    std::snprintf(buf, sizeof(buf), "histograms: %-*s %8s %10s %10s %10s %10s %10s\n",
                  static_cast<int>(width) - 1, "", "count", "mean", "p50",
                  "p90", "p99", "max");
    os << buf;
    for (const auto& [name, histogram] : histograms_) {
      const RunningStats& s = histogram.stats();
      std::snprintf(buf, sizeof(buf),
                    "  %-*s %8lld %10.1f %10.1f %10.1f %10.1f %10.1f\n",
                    static_cast<int>(width), name.c_str(),
                    static_cast<long long>(s.count()), s.mean(),
                    histogram.quantile(0.5), histogram.quantile(0.9),
                    histogram.quantile(0.99), s.count() > 0 ? s.max() : 0.0);
      os << buf;
    }
  }
}

}  // namespace hca
