#include <gtest/gtest.h>

#include "ddg/interp.hpp"
#include "ddg/kernels.hpp"
#include "support/rng.hpp"

namespace hca::ddg {
namespace {

/// DSPFabric resource model of the paper's evaluation: 64 single-issue CNs
/// and a DMA serving at most 8 simultaneous requests. MIIRes is the max of
/// the issue bound and the memory bound (see DESIGN.md §4).
int miiRes64(const DdgStats& s) {
  const int issue = (s.numInstructions + 63) / 64;
  const int mem = (s.numMemOps + 7) / 8;
  return std::max(issue, mem);
}

class KernelTable1Test : public ::testing::TestWithParam<int> {
 protected:
  Kernel kernel() const {
    auto kernels = table1Kernels();
    return std::move(kernels[static_cast<std::size_t>(GetParam())]);
  }
};

TEST_P(KernelTable1Test, Validates) {
  const auto k = kernel();
  EXPECT_NO_THROW(k.ddg.validate());
}

TEST_P(KernelTable1Test, InstructionCountMatchesPaper) {
  const auto k = kernel();
  EXPECT_EQ(k.ddg.stats().numInstructions, k.paper.nInstr)
      << "kernel " << k.name;
}

TEST_P(KernelTable1Test, MiiRecMatchesPaper) {
  const auto k = kernel();
  EXPECT_EQ(k.ddg.miiRec(LatencyModel{}), k.paper.miiRec)
      << "kernel " << k.name;
}

TEST_P(KernelTable1Test, MiiResMatchesPaper) {
  const auto k = kernel();
  EXPECT_EQ(miiRes64(k.ddg.stats()), k.paper.miiRes) << "kernel " << k.name;
}

TEST_P(KernelTable1Test, MemOpsWithinDmaBudgetModel) {
  // Sanity on the calibration: the DMA bound never exceeds the paper's
  // MIIRes, i.e. the kernels do not overdrive the 8-slot DMA.
  const auto k = kernel();
  EXPECT_LE((k.ddg.stats().numMemOps + 7) / 8, k.paper.miiRes);
}

TEST_P(KernelTable1Test, InterpretableForSafeIterations) {
  const auto k = kernel();
  const int iters = std::min(k.safeIterations, 12);
  const auto cfg = kernelInterpConfig(k, iters);
  EXPECT_NO_THROW(interpret(k.ddg, cfg));
}

TEST_P(KernelTable1Test, StoresHappenEveryIteration) {
  const auto k = kernel();
  const int iters = std::min(k.safeIterations, 8);
  const auto cfg = kernelInterpConfig(k, iters);
  const auto result = interpret(k.ddg, cfg);
  int storesPerIter = 0;
  for (std::int32_t v = 0; v < k.ddg.numNodes(); ++v) {
    if (k.ddg.node(DdgNodeId(v)).op == Op::kStore) ++storesPerIter;
  }
  EXPECT_EQ(result.storeTrace.size(),
            static_cast<std::size_t>(storesPerIter * iters));
}

TEST_P(KernelTable1Test, DeterministicExecution) {
  const auto k = kernel();
  const int iters = std::min(k.safeIterations, 6);
  const auto cfg = kernelInterpConfig(k, iters, /*seed=*/3);
  const auto r1 = interpret(k.ddg, cfg);
  const auto r2 = interpret(k.ddg, cfg);
  EXPECT_EQ(r1.memory, r2.memory);
}

std::string kernelParamName(const ::testing::TestParamInfo<int>& info) {
  static const char* kNames[] = {"fir2dim", "idcthor", "mpeg2inter",
                                 "h264deblocking"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelTable1Test,
                         ::testing::Range(0, 4), kernelParamName);

// --- kernel-specific semantics ----------------------------------------------

TEST(Fir2DimTest, OutputsAreClippedFilterResponses) {
  const auto k = buildFir2Dim();
  const auto cfg = kernelInterpConfig(k, 10);
  const auto result = interpret(k.ddg, cfg);
  for (const auto& store : result.storeTrace) {
    EXPECT_GE(store.value, 0);
    EXPECT_LE(store.value, 255);
  }
}

TEST(Fir2DimTest, FlatInputYieldsFlatOutput) {
  // With all pixels equal to p, a normalized 3x3 kernel returns p (once the
  // sliding window has warmed past the first iteration's init values).
  auto k = buildFir2Dim();
  InterpConfig cfg;
  cfg.iterations = 8;
  cfg.memory.assign(static_cast<std::size_t>(k.memorySize), 100);
  const auto result = interpret(k.ddg, cfg);
  // Skip iteration 0 (window inits) — all later outputs must equal 100.
  for (const auto& store : result.storeTrace) {
    if (store.iteration == 0) continue;
    EXPECT_EQ(store.value, 100) << "at iteration " << store.iteration;
  }
}

TEST(IdctHorTest, DcOnlyRowIsConstant) {
  // An input row with only the DC coefficient set produces a constant row:
  // out[k] = (dc * 2048 + 128*2049/2048...) — exactly: ((dc<<11)+128+0)>>8.
  auto k = buildIdctHor();
  InterpConfig cfg;
  cfg.iterations = 1;
  cfg.memory.assign(static_cast<std::size_t>(k.memorySize), 0);
  cfg.memory[0] = 16;  // dc of row 0
  const auto result = interpret(k.ddg, cfg);
  ASSERT_EQ(result.storeTrace.size(), 8u);
  const std::int64_t expected = ((16LL << 11) + 128) >> 8;
  for (const auto& store : result.storeTrace) {
    EXPECT_EQ(store.value, std::min<std::int64_t>(expected, 255));
  }
}

TEST(IdctHorTest, ZeroRowStaysZero) {
  auto k = buildIdctHor();
  InterpConfig cfg;
  cfg.iterations = 2;
  cfg.memory.assign(static_cast<std::size_t>(k.memorySize), 0);
  const auto result = interpret(k.ddg, cfg);
  for (const auto& store : result.storeTrace) {
    EXPECT_EQ(store.value, 0);
  }
}

TEST(Mpeg2InterTest, FlatReferencesAverageFlat) {
  auto k = buildMpeg2Inter();
  InterpConfig cfg;
  cfg.iterations = 6;
  cfg.memory.assign(static_cast<std::size_t>(k.memorySize), 80);
  const auto result = interpret(k.ddg, cfg);
  for (const auto& store : result.storeTrace) {
    if (store.iteration == 0) continue;  // sliding-window warm-up
    EXPECT_EQ(store.value, 80);
  }
}

TEST(Mpeg2InterTest, OutputsClipped) {
  const auto k = buildMpeg2Inter();
  const auto cfg = kernelInterpConfig(k, 10, 7);
  const auto result = interpret(k.ddg, cfg);
  for (const auto& store : result.storeTrace) {
    EXPECT_GE(store.value, 0);
    EXPECT_LE(store.value, 255);
  }
}

TEST(H264DeblockTest, FlatEdgeUntouched) {
  // A perfectly flat edge has delta 0 everywhere: stores write back the
  // original pixel values.
  auto k = buildH264Deblocking();
  InterpConfig cfg;
  cfg.iterations = 8;
  cfg.memory.assign(static_cast<std::size_t>(k.memorySize), 60);
  const auto result = interpret(k.ddg, cfg);
  for (const auto& store : result.storeTrace) {
    EXPECT_EQ(store.value, 60);
  }
}

TEST(H264DeblockTest, StrongEdgeNotFiltered) {
  // |p0 - q0| >= alpha -> filterSampleFlag false -> pixels unchanged
  // (a real edge must not be smoothed).
  auto k = buildH264Deblocking();
  InterpConfig cfg;
  cfg.iterations = 4;
  cfg.memory.assign(static_cast<std::size_t>(k.memorySize), 0);
  // p side all 0, q side all 200: |p0-q0| = 200 >= alpha(40).
  for (int i = 3 * 64; i < 6 * 64; ++i) {
    cfg.memory[static_cast<std::size_t>(i)] = 200;
  }
  const auto result = interpret(k.ddg, cfg);
  auto after = result.memory;
  EXPECT_EQ(after, result.memory);
  for (const auto& store : result.storeTrace) {
    // Writes preserve the original values on both sides.
    EXPECT_TRUE(store.value == 0 || store.value == 200);
  }
}

TEST(H264DeblockTest, SmallStepIsSmoothed) {
  // A small step across the edge (within alpha/beta) must be reduced.
  auto k = buildH264Deblocking();
  InterpConfig cfg;
  cfg.iterations = 1;
  cfg.memory.assign(static_cast<std::size_t>(k.memorySize), 100);
  for (int i = 3 * 64; i < 6 * 64; ++i) {
    cfg.memory[static_cast<std::size_t>(i)] = 110;  // step of 10 < alpha
  }
  const auto result = interpret(k.ddg, cfg);
  bool sawFilteredP0 = false;
  for (const auto& store : result.storeTrace) {
    if (store.address >= 2 * 64 && store.address < 3 * 64) {  // p0 row
      EXPECT_GT(store.value, 100);  // pulled towards q
      sawFilteredP0 = true;
    }
  }
  EXPECT_TRUE(sawFilteredP0);
}

// --- random DDG generator ----------------------------------------------------

class RandomDdgTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomDdgTest, GeneratesValidInterpretableDdg) {
  Rng rng(GetParam());
  RandomDdgParams params;
  params.numInstructions = 50 + static_cast<int>(GetParam() % 40);
  const Ddg ddg = randomDdg(rng, params);
  EXPECT_NO_THROW(ddg.validate());
  EXPECT_GE(ddg.stats().numInstructions, params.numInstructions - 2);
  InterpConfig cfg;
  cfg.iterations = 8;
  cfg.memory.assign(static_cast<std::size_t>(params.memorySize), 1);
  EXPECT_NO_THROW(interpret(ddg, cfg));
}

TEST_P(RandomDdgTest, MiiRecIsFinite) {
  Rng rng(GetParam() * 31 + 1);
  const Ddg ddg = randomDdg(rng, RandomDdgParams{});
  const auto mii = ddg.miiRec(LatencyModel{});
  EXPECT_GE(mii, 1);
  EXPECT_LE(mii, 64);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDdgTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace hca::ddg
