#!/usr/bin/env bash
# The repo's CI entry point (also runnable locally): tier-1 tests, the
# thread-safety-analysis build, and the clang-tidy profile.
#
#   1. tier-1   — cmake + build + full ctest suite (the acceptance bar every
#                 change must keep green)
#   2. tsa      — a clang build with -Wthread-safety -Werror=thread-safety
#                 verifying the HCA_GUARDED_BY/HCA_REQUIRES annotations;
#                 skipped with a notice when clang is not installed (GCC has
#                 no thread-safety analysis)
#   3. lint     — tools/run_clang_tidy.sh over src/tools/examples; skips
#                 itself when clang-tidy is missing
#
# Usage: tools/ci.sh [jobs]
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="${1:-$(nproc)}"

echo "=== ci: tier-1 build + tests ==="
cmake -B "${root}/build" -S "${root}"
cmake --build "${root}/build" -j "${jobs}"
(cd "${root}/build" && ctest --output-on-failure -j "${jobs}")

echo "=== ci: thread-safety analysis build ==="
if command -v clang++ >/dev/null 2>&1; then
  cmake -B "${root}/build-tsa" -S "${root}" \
    -DCMAKE_CXX_COMPILER=clang++ -DHCA_WERROR=ON
  cmake --build "${root}/build-tsa" -j "${jobs}"
  echo "ci: thread-safety build clean"
else
  echo "ci: clang++ not found; skipping the thread-safety analysis build"
fi

echo "=== ci: clang-tidy ==="
"${root}/tools/run_clang_tidy.sh" "${root}/build"

echo "=== ci: all stages passed ==="
