#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "support/metrics.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"
#include "support/trace.hpp"

/// Minimal fixed-size thread pool and cooperative cancellation primitive.
///
/// Used by the HCA driver's portfolio search: every (target II, heuristic
/// profile) attempt is an independent task, so a plain FIFO pool — no work
/// stealing, no futures — is all the machinery the outer loop needs. Tasks
/// must not throw (the driver captures exceptions into per-attempt slots).
/// All queue state is guarded by one annotated `Mutex`, so a clang
/// `-Wthread-safety` build proves lock discipline at compile time.
namespace hca {

/// A cooperative soft-cancellation flag.
///
/// Long-running searches poll `cancelled()` at loop boundaries and unwind
/// with an "illegal" result when it flips; the canceller never blocks or
/// interrupts. Cancellation is one-way and sticky.
///
/// Beyond the plain flag, a token can carry a wall-clock deadline (the
/// HCA driver's `deadlineMs` budget) and can be chained to a parent token
/// (the portfolio sweep chains every per-attempt token to the run-wide
/// deadline token). `cancelled()` latches: once it has observed an expired
/// deadline or a cancelled parent it stays cancelled, so no polling site
/// ever sees the flag flip back.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }

  /// Arms a wall-clock deadline; polling `cancelled()` after this instant
  /// cancels the token. Must be set before the token is shared.
  void setDeadline(MonotonicTime deadline) noexcept {
    deadline_ = deadline;
    hasDeadline_ = true;
  }

  /// Chains this token to `parent`: a cancelled parent (for any reason)
  /// cancels this token at the next poll. Must be set before the token is
  /// shared; `parent` must outlive this token. nullptr = no parent.
  void chainTo(const CancellationToken* parent) noexcept { parent_ = parent; }

  [[nodiscard]] bool cancelled() const noexcept {
    if (cancelled_.load(std::memory_order_acquire)) return true;
    if ((hasDeadline_ && monotonicNow() >= deadline_) ||
        (parent_ != nullptr && parent_->cancelled())) {
      cancelled_.store(true, std::memory_order_release);
      return true;
    }
    return false;
  }

 private:
  mutable std::atomic<bool> cancelled_{false};
  MonotonicTime deadline_{};
  bool hasDeadline_ = false;
  const CancellationToken* parent_ = nullptr;
};

class ThreadPool {
 public:
  /// Execution statistics since construction, for the observability layer:
  /// queue pressure (how far submission ran ahead of the workers) and task
  /// latency split into queue wait vs. run time.
  struct PoolStats {
    std::int64_t tasksExecuted = 0;
    int maxQueueDepth = 0;  ///< deepest queue observed at submit time
    Histogram taskWaitUs;   ///< submit -> dequeue, microseconds
    Histogram taskRunUs;    ///< dequeue -> completion, microseconds
  };

  /// Spawns `numThreads` workers (must be >= 1).
  explicit ThreadPool(int numThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw; wrap bodies in try/catch and
  /// stash the exception if the caller needs it.
  void submit(std::function<void()> task) HCA_EXCLUDES(mutex_);

  /// Blocks until the queue is empty and every worker is idle. The pool is
  /// reusable after wait() returns.
  void wait() HCA_EXCLUDES(mutex_);

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// Snapshot of the execution statistics (completed tasks only).
  [[nodiscard]] PoolStats stats() const HCA_EXCLUDES(mutex_);

  /// Maps the user-facing `numThreads` knob to a concrete worker count:
  /// 0 = std::thread::hardware_concurrency (at least 1), otherwise the
  /// requested value clamped to >= 1.
  [[nodiscard]] static int resolveThreads(int requested);

  /// std::thread::hardware_concurrency with the zero-means-unknown case
  /// mapped to 1.
  [[nodiscard]] static int hardwareThreads();

  /// resolveThreads, additionally clamped to hardwareThreads() unless the
  /// caller explicitly opts into oversubscription. Requesting more workers
  /// than cores makes a CPU-bound portfolio strictly slower (context-switch
  /// thrash), so the clamp is the default everywhere a user-facing knob
  /// feeds a pool size.
  [[nodiscard]] static int effectiveThreads(int requested,
                                            bool allowOversubscribe);

 private:
  struct QueuedTask {
    std::function<void()> fn;
    MonotonicTime enqueued;
  };

  void workerLoop() HCA_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  mutable Mutex mutex_;
  std::deque<QueuedTask> queue_ HCA_GUARDED_BY(mutex_);
  /// CondVar (condition_variable_any): waits on the annotated MutexLock.
  CondVar workCv_;  // queue non-empty or shutting down
  CondVar idleCv_;  // queue empty and no task in flight
  int active_ HCA_GUARDED_BY(mutex_) = 0;
  bool stop_ HCA_GUARDED_BY(mutex_) = false;
  PoolStats stats_ HCA_GUARDED_BY(mutex_);
};

}  // namespace hca
