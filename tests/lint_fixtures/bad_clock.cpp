// Fixture: flagged by determinism-clock and no other rule. The test maps
// this file to src/see/bad_clock.cpp, outside the clock allowlist.
#include <chrono>

namespace hca::see {

[[nodiscard]] long long fixtureNow() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace hca::see
