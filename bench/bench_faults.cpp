// E7: graceful degradation under hardware faults.
//
// For every Table 1 kernel, kill k random computation nodes (seeded, so
// fault sets are nested: the k=8 set contains the k=4 set contains ...)
// and re-run the degraded-mode HCA ladder on the surviving fabric.
// Reports the achieved MII per fault count, which fallback rung (if any)
// produced the mapping, and how often the search hit its deadline —
// i.e. how much performance the coprocessor loses per dead cluster.

#include <cstdio>
#include <cstring>
#include <ctime>
#include <sstream>

#include "ddg/kernels.hpp"
#include "hca/driver.hpp"
#include "hca/mii.hpp"
#include "hca/report.hpp"
#include "support/context.hpp"
#include "machine/fault_inject.hpp"
#include "support/io.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"

using namespace hca;

namespace {

constexpr int kFaultCounts[] = {0, 1, 2, 4, 8, 16};

void runKernel(const ddg::Kernel& kernel, int index, JsonWriter& json) {
  std::printf("%-16s", kernel.name.c_str());
  for (const int deadCns : kFaultCounts) {
    // Fresh RNG per count keeps the nested-prefix property of the
    // injector: the same seed with a larger count kills a superset.
    Rng rng(0xE7 + static_cast<std::uint64_t>(index));
    machine::FaultInjectParams params;
    params.deadCns = deadCns;
    const machine::DspFabricConfig config;
    const machine::FaultSet faults =
        machine::injectRandomFaults(rng, machine::DspFabricModel(config),
                                    params);
    const machine::DspFabricModel model(config, faults);
    core::HcaOptions options;
    options.failurePolicy = core::FailurePolicy::kDegrade;
    options.targetIiSlack = 4;  // bounded effort per fault count
    options.searchProfiles = 3;
    options.deadlineMs = 20000;
    const core::HcaDriver driver(model, options);
    const auto result = driver.run(kernel.ddg);

    // One JSON row per kernel x fault-count cell, embedding the full
    // per-phase run report (which rung ran, per-level search metrics).
    json.beginObject();
    json.key("kernel").value(kernel.name);
    json.key("deadCns").value(deadCns);
    json.key("legal").value(result.legal);
    json.key("fallbackUsed").value(result.fallbackUsed);
    json.key("failureCause");
    if (result.failure != nullptr) {
      json.value(to_string(result.failure->cause));
    } else {
      json.null();
    }
    json.key("attemptsCancelled").value(result.stats.attemptsCancelled);

    if (result.legal) {
      const auto mii = core::computeMii(kernel.ddg, model, result);
      std::printf(" %6d%s", mii.finalMii,
                  result.fallbackUsed.empty() ? " " : "*");
      json.key("mii").value(mii.finalMii);
    } else {
      std::printf(" %6s ", "failed");
      json.key("mii").null();
    }
    json.key("report");
    core::writeRunReport(json, result, &model);
    json.endObject();
    std::fflush(stdout);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool strictBuild = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict-build") == 0) strictBuild = true;
  }
  if (warnIfDebugBuild("bench_faults") && strictBuild) return 1;
  std::printf(
      "Fault degradation (final MII per number of dead CNs out of 64;\n"
      "'*' = a fallback rung produced the mapping, 'failed' = structured\n"
      "failure report instead of a legal clusterization)\n\n");
  std::printf("%-16s", "Loop");
  for (const int deadCns : kFaultCounts) std::printf(" %5dCN ", deadCns);
  std::printf("\n%s\n", std::string(70, '-').c_str());
  const std::clock_t t0 = std::clock();
  std::ostringstream jsonOut;
  JsonWriter json(jsonOut);
  json.beginObject();
  json.key("bench").value("faults");
  json.key("context");
  RunContext::current().writeJson(json);
  json.key("rows").beginArray();
  int index = 0;
  for (auto& kernel : ddg::table1Kernels()) runKernel(kernel, index++, json);
  json.endArray();
  json.endObject();
  jsonOut << "\n";
  // Atomic write: never leave a truncated BENCH JSON behind.
  atomicWriteFile("BENCH_faults.json", jsonOut.str());
  std::printf("\nTotal time: %.1fs\n",
              static_cast<double>(std::clock() - t0) / CLOCKS_PER_SEC);
  std::printf("Per-cell rows with embedded run reports: BENCH_faults.json\n");
  return 0;
}
