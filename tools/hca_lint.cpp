// hca_lint — the in-repo static contract checker.
//
// Loads compile_commands.json, lexes every translation unit and every repo
// header it reaches, and enforces the four rule families documented in
// src/analysis/rules.hpp: determinism (clocks + unordered iteration),
// layering (module DAG back-edges and include cycles), locking (hca::Mutex
// + HCA_GUARDED_BY discipline), and the exit contract.
//
//   hca_lint --compile-commands build/compile_commands.json
//   hca_lint --compile-commands build/compile_commands.json
//            --baseline tools/lint_baseline.json --json lint.json
//   hca_lint ... --update-baseline       # rewrite the baseline in place
//
// Exit codes: 0 clean (no diagnostics outside the baseline), 1 fresh
// diagnostics found (stderr names each offending rule), 2 usage or I/O
// error.

#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "analysis/baseline.hpp"
#include "analysis/report.hpp"
#include "analysis/rules.hpp"
#include "analysis/source_model.hpp"
#include "support/check.hpp"
#include "support/io.hpp"
#include "support/str.hpp"

using namespace hca;
using namespace hca::analysis;

namespace {

void usage() {
  std::printf(
      "usage: hca_lint --compile-commands PATH [options]\n"
      "  --compile-commands PATH  compile_commands.json from the build tree\n"
      "  --root DIR               repo root (default: parent of this file's\n"
      "                           heuristics — pass it explicitly in CI)\n"
      "  --baseline PATH          known-debt baseline (deltas-only gating)\n"
      "  --update-baseline        rewrite --baseline from current findings\n"
      "                           (prunes stale entries) and exit 0\n"
      "  --json PATH              write the full report as JSON\n"
      "  --help                   this text\n");
}

struct Options {
  std::string compileCommands;
  std::string root;
  std::string baselinePath;
  std::string jsonPath;
  bool updateBaseline = false;
};

[[nodiscard]] Options parseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      HCA_REQUIRE(i + 1 < argc, "missing value for " << arg);
      return argv[++i];
    };
    if (arg == "--compile-commands") {
      options.compileCommands = value();
    } else if (arg == "--root") {
      options.root = value();
    } else if (arg == "--baseline") {
      options.baselinePath = value();
    } else if (arg == "--json") {
      options.jsonPath = value();
    } else if (arg == "--update-baseline") {
      options.updateBaseline = true;
    } else if (arg == "--help") {
      usage();
      std::exit(0);
    } else {
      throw InvalidArgumentError(strCat("unknown argument: ", arg));
    }
  }
  HCA_REQUIRE(!options.compileCommands.empty(),
              "--compile-commands is required");
  HCA_REQUIRE(!options.updateBaseline || !options.baselinePath.empty(),
              "--update-baseline requires --baseline");
  return options;
}

/// Default repo root: the directory holding compile_commands.json is the
/// build tree, and the build tree lives directly under the root.
[[nodiscard]] std::string inferRoot(const Options& options) {
  if (!options.root.empty()) return options.root;
  namespace fs = std::filesystem;
  const fs::path db = fs::absolute(options.compileCommands).lexically_normal();
  return db.parent_path().parent_path().string();
}

[[nodiscard]] int run(const Options& options) {
  const std::string root = inferRoot(options);
  const std::vector<CompileCommand> commands =
      parseCompileCommands(readFile(options.compileCommands));
  const SourceModel model = SourceModel::load(root, commands);
  HCA_REQUIRE(!model.files().empty(),
              "no repo sources found under root " << root
                  << " — pass --root explicitly");

  const std::vector<Diagnostic> diagnostics = runAllRules(model);

  Baseline baseline;
  if (!options.baselinePath.empty() && fileExists(options.baselinePath)) {
    baseline = parseBaseline(readFile(options.baselinePath));
  }

  if (options.updateBaseline) {
    const Baseline updated = baselineFromDiagnostics(diagnostics);
    atomicWriteFile(options.baselinePath, formatBaseline(updated));
    std::printf("hca-lint: baseline updated: %zu suppression(s) -> %s\n",
                updated.suppressions.size(), options.baselinePath.c_str());
    return 0;
  }

  const BaselineSplit split = splitAgainstBaseline(baseline, diagnostics);

  if (!options.jsonPath.empty()) {
    atomicWriteFile(options.jsonPath, formatReportJson(split));
  }

  std::printf("hca-lint: %zu file(s) scanned, %zu diagnostic(s) (%zu new, "
              "%zu baselined, %zu stale baseline entr%s)\n",
              model.files().size(), diagnostics.size(), split.fresh.size(),
              split.baselined.size(), split.stale.size(),
              split.stale.size() == 1 ? "y" : "ies");
  const std::string baselinedTable =
      formatDiagnosticsTable("known debt (baselined)", split.baselined);
  if (!baselinedTable.empty()) std::printf("%s", baselinedTable.c_str());
  for (const std::string& key : split.stale) {
    std::printf("stale baseline entry (fixed? run --update-baseline): %s\n",
                key.c_str());
  }
  const std::string freshTable =
      formatDiagnosticsTable("NEW diagnostics", split.fresh);
  if (!freshTable.empty()) std::fprintf(stderr, "%s", freshTable.c_str());

  if (split.fresh.empty()) return 0;
  std::set<std::string> rules;
  for (const Diagnostic& d : split.fresh) rules.insert(d.rule);
  std::fprintf(stderr,
               "hca-lint: FAILED — %zu new diagnostic(s) from rule(s): %s\n",
               split.fresh.size(), strJoin(rules, ", ").c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(parseArgs(argc, argv));
  } catch (const InvalidArgumentError& e) {
    std::fprintf(stderr, "hca-lint: %s\n", e.what());
    usage();
    return 2;
  } catch (const IoError& e) {
    std::fprintf(stderr, "hca-lint: I/O error: %s\n", e.what());
    return 2;
  } catch (const Error& e) {
    std::fprintf(stderr, "hca-lint: %s\n", e.what());
    return 2;
  }
}
