#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

/// Streaming summary statistics (Welford), used by the benchmark harnesses
/// and by search diagnostics.
namespace hca {

class RunningStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const {
    return count_ > 0 ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const {
    return count_ > 0 ? max_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

  /// Folds another accumulator into this one (Chan et al.'s parallel
  /// combine), so per-attempt statistics can merge like counters do.
  /// Merging works on the internal ±inf sentinels, never on the NaN the
  /// min()/max() accessors report for an empty side — an empty operand is
  /// a no-op and cannot poison the other side's extrema.
  void merge(const RunningStats& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const std::int64_t n = count_ + other.count_;
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                           static_cast<double>(other.count_) /
                           static_cast<double>(n);
    mean_ = (mean_ * static_cast<double>(count_) +
             other.mean_ * static_cast<double>(other.count_)) /
            static_cast<double>(n);
    count_ = n;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace hca
