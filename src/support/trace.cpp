#include "support/trace.hpp"

#include <cstdlib>

#include "support/json.hpp"

namespace hca {

namespace {

/// Innermost active spans of the calling thread, as (tracer, span id)
/// pairs. A plain vector: span lifetimes are strictly nested by the RAII
/// discipline, so push/pop at the back is always correct. Storing the
/// tracer next to the id lets independent tracers interleave on one thread
/// without corrupting each other's parent chains.
thread_local std::vector<std::pair<const Tracer*, std::int64_t>> tActiveSpans;

}  // namespace

WallClockSample wallClockNow() {
  const auto now = std::chrono::system_clock::now();
  WallClockSample sample;
  sample.seconds = std::chrono::system_clock::to_time_t(now);
  sample.millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  return sample;
}

Tracer::Tracer(bool enabled, std::size_t maxSpans)
    : enabled_(enabled), maxSpans_(maxSpans), epoch_(monotonicNow()) {}

std::size_t Tracer::spanCount() const {
  MutexLock lock(mutex_);
  return spans_.size();
}

std::int64_t Tracer::droppedSpans() const {
  MutexLock lock(mutex_);
  return dropped_;
}

std::vector<Tracer::SpanRecord> Tracer::spans() const {
  MutexLock lock(mutex_);
  return spans_;
}

std::int64_t Tracer::beginSpan() {
  MutexLock lock(mutex_);
  return nextId_++;
}

int Tracer::tidOf(std::thread::id id) {
  // Caller holds mutex_.
  const auto it = tids_.find(id);
  if (it != tids_.end()) return it->second;
  const int tid = static_cast<int>(tids_.size());
  tids_.emplace(id, tid);
  return tid;
}

void Tracer::endSpan(SpanRecord record) {
  MutexLock lock(mutex_);
  record.tid = tidOf(std::this_thread::get_id());
  if (spans_.size() >= maxSpans_) {
    ++dropped_;
    return;
  }
  spans_.push_back(std::move(record));
}

void Tracer::writeChromeJson(std::ostream& os) const {
  const auto snapshot = spans();
  JsonWriter json(os);
  json.beginObject();
  json.key("traceEvents").beginArray();
  for (const auto& span : snapshot) {
    json.beginObject();
    json.key("name").value(span.name);
    json.key("cat").value(span.category);
    json.key("ph").value("X");
    json.key("ts").value(span.tsUs);
    json.key("dur").value(span.durUs);
    json.key("pid").value(1);
    json.key("tid").value(span.tid);
    json.key("args").beginObject();
    json.key("id").value(span.id);
    json.key("parent").value(span.parentId);
    for (const auto& [key, value] : span.args) {
      json.key(key).value(value);
    }
    json.endObject();
    json.endObject();
  }
  json.endArray();
  json.key("displayTimeUnit").value("ms");
  json.key("otherData").beginObject();
  json.key("droppedSpans").value(droppedSpans());
  json.endObject();
  json.endObject();
  os << '\n';
}

Tracer* Tracer::envForced() {
  static Tracer* const forced = []() -> Tracer* {
    const char* env = std::getenv("HCA_TRACE_FORCE");
    if (env == nullptr || env[0] == '\0') return nullptr;
    // Leaked on purpose: the forced tracer lives for the whole process and
    // may be referenced from any thread during static destruction.
    return new Tracer(/*enabled=*/true);
  }();
  return forced;
}

TraceSpan::TraceSpan(Tracer* tracer, const char* category, const char* name) {
  if (tracer == nullptr || !tracer->enabled()) return;
  tracer_ = tracer;
  record_.name = name;
  record_.category = category;
  record_.id = tracer_->beginSpan();
  if (!tActiveSpans.empty() && tActiveSpans.back().first == tracer_) {
    record_.parentId = tActiveSpans.back().second;
  }
  tActiveSpans.emplace_back(tracer_, record_.id);
  start_ = monotonicNow();
}

TraceSpan::~TraceSpan() {
  if (tracer_ == nullptr) return;
  const auto end = monotonicNow();
  record_.tsUs = std::chrono::duration_cast<std::chrono::microseconds>(
                     start_ - tracer_->epoch_)
                     .count();
  record_.durUs =
      std::chrono::duration_cast<std::chrono::microseconds>(end - start_)
          .count();
  // Strictly nested lifetimes: this span is the innermost on this thread.
  if (!tActiveSpans.empty() && tActiveSpans.back().second == record_.id &&
      tActiveSpans.back().first == tracer_) {
    tActiveSpans.pop_back();
  }
  tracer_->endSpan(std::move(record_));
}

void TraceSpan::arg(const char* key, std::string value) {
  if (tracer_ == nullptr) return;
  record_.args.emplace_back(key, std::move(value));
}

}  // namespace hca
